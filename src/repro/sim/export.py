"""Trace and stats export utilities.

Downstream analysis (plotting, regression dashboards) wants flat records,
not object graphs.  This module converts traces and
:class:`~repro.sim.metrics.InventoryStats` into plain dicts and writes
CSV/JSON without any third-party dependency.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.sim.metrics import InventoryStats
from repro.sim.trace import SlotRecord

__all__ = [
    "trace_to_rows",
    "stats_to_dict",
    "write_trace_csv",
    "write_stats_json",
]


def trace_to_rows(trace: Sequence[SlotRecord]) -> list[dict[str, object]]:
    """Flatten slot records; enum fields become their names."""
    rows = []
    for rec in trace:
        row = asdict(rec)
        row["true_type"] = rec.true_type.name
        row["detected_type"] = rec.detected_type.name
        rows.append(row)
    return rows


def stats_to_dict(stats: InventoryStats) -> dict[str, object]:
    """Flatten an InventoryStats into JSON-ready primitives."""
    return {
        "n_tags": stats.n_tags,
        "frames": stats.frames,
        "idle": stats.true_counts.idle,
        "single": stats.true_counts.single,
        "collided": stats.true_counts.collided,
        "detected_idle": stats.detected_counts.idle,
        "detected_single": stats.detected_counts.single,
        "detected_collided": stats.detected_counts.collided,
        "throughput": stats.throughput,
        "total_time": stats.total_time,
        "accuracy": stats.accuracy,
        "delay_mean": stats.delay.mean,
        "delay_std": stats.delay.std,
        "delay_median": stats.delay.median,
        "utilization": stats.utilization,
        "missed_collisions": stats.missed_collisions,
        "false_collisions": stats.false_collisions,
        "lost_tags": stats.lost_tags,
        "captures": stats.captures,
    }


def write_trace_csv(trace: Sequence[SlotRecord], path: str | Path) -> Path:
    """Write one CSV row per slot; returns the path written."""
    path = Path(path)
    rows = trace_to_rows(trace)
    fields = list(rows[0]) if rows else [
        "index",
        "frame",
        "n_responders",
        "true_type",
        "detected_type",
        "duration",
        "end_time",
        "identified_tag",
        "lost_tags",
        "captured",
    ]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_stats_json(
    stats: InventoryStats | Iterable[InventoryStats], path: str | Path
) -> Path:
    """Write one stats dict (or a list of them) as JSON."""
    path = Path(path)
    if isinstance(stats, InventoryStats):
        payload: object = stats_to_dict(stats)
    else:
        payload = [stats_to_dict(s) for s in stats]
    path.write_text(json.dumps(payload, indent=2, allow_nan=True))
    return path
