"""Multi-reader inventory over a spatial deployment (Table V scenario).

Runs one inventory per reader, in coloring-schedule order: readers in the
same round interrogate concurrently (their fields are disjoint by
construction), successive rounds run back-to-back.  A tag in the overlap of
two readers is identified by whichever reader reaches it first; later
readers skip already-identified tags (their select mask excludes them, as a
Gen2 ``SELECT`` would).

The result aggregates the paper's metrics across readers and reports the
sweep makespan: ``Σ_rounds max_reader(inventory time)``.

:func:`run_multireader_inventory` with ``scheduled=False`` activates every
reader simultaneously instead, which *constructs* the failure the paper
assumes away (Section II): a tag covered by two concurrently-active
readers cannot separate their queries (reader-reader collision) and a
reader inside another's carrier cannot hear its tags (reader-tag
collision) -- those tags are jammed for the whole sweep.  Comparing the
two modes quantifies what the scheduling substrate buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.protocols.base import AntiCollisionProtocol
from repro.sim.deployment import Deployment
from repro.sim.reader import InventoryResult, Reader
from repro.sim.scheduling import color_schedule

__all__ = ["MultiReaderResult", "run_multireader_inventory"]


@dataclass
class MultiReaderResult:
    """Aggregate outcome of a multi-reader sweep."""

    per_reader: dict[int, InventoryResult]
    rounds: list[list[int]]
    makespan: float
    identified: int
    covered: int
    population: int
    #: Covered tags unreadable because two active readers jammed them
    #: (unscheduled mode only; 0 under a proper schedule).
    jammed: int = 0

    @property
    def coverage(self) -> float:
        return self.covered / self.population if self.population else 1.0

    @property
    def identification_rate(self) -> float:
        """Identified / covered -- 1.0 unless tags were lost to
        misdetection."""
        return self.identified / self.covered if self.covered else 1.0

    @property
    def total_slots(self) -> int:
        return sum(
            len(r.trace) for r in self.per_reader.values()
        )


def run_multireader_inventory(
    deployment: Deployment,
    reader_factory: Callable[[int], Reader],
    protocol_factory: Callable[[int], AntiCollisionProtocol],
    guard_factor: float = 1.0,
    scheduled: bool = True,
) -> MultiReaderResult:
    """Sweep the deployment: every reader inventories its covered tags.

    Parameters
    ----------
    deployment:
        The spatial scenario (readers + positioned tags).
    reader_factory / protocol_factory:
        Called with each reader id; lets callers give every reader its own
        detector/protocol instance (protocol state is per-inventory).
    guard_factor:
        Interference inflation for the schedule (see
        :func:`repro.sim.scheduling.interference_graph`).
    scheduled:
        True (default): interference-colored activation rounds; no two
        interfering readers are ever concurrently active.  False: every
        reader fires at once -- tags covered by two or more readers are
        jammed (reader-reader collision) and stay unidentified, which is
        the failure mode the schedule exists to prevent.
    """
    assignment = deployment.assignment()
    if scheduled:
        rounds = color_schedule(deployment, guard_factor)
    else:
        rounds = [[r.reader_id for r in deployment.readers]]
    jammed_tags: set[int] = set()
    if not scheduled:
        seen: dict[int, int] = {}
        for tags in assignment.values():
            for tag in tags:
                seen[id(tag)] = seen.get(id(tag), 0) + 1
        jammed_tags = {key for key, count in seen.items() if count >= 2}
    obs_on = _OBS.enabled
    if obs_on:
        _OBS.tracer.start_span(
            "multireader_sweep",
            readers=len(deployment.readers),
            rounds=len(rounds),
            scheduled=scheduled,
        )
        _OBS.registry.counter(
            _inst.SWEEPS, "Multi-reader sweeps executed"
        ).inc()
        if jammed_tags:
            _OBS.registry.counter(
                _inst.JAMMED,
                "Tags jammed by concurrent readers (unscheduled mode)",
            ).inc(len(jammed_tags))
    per_reader: dict[int, InventoryResult] = {}
    makespan = 0.0
    for round_number, round_ids in enumerate(rounds):
        round_time = 0.0
        for reader_id in round_ids:
            tags = [
                t
                for t in assignment[reader_id]
                if not t.identified and id(t) not in jammed_tags
            ]
            if not tags:
                continue
            reader = reader_factory(reader_id)
            protocol = protocol_factory(reader_id)
            if obs_on:
                _OBS.tracer.event(
                    "reader_activation",
                    round=round_number,
                    reader_id=reader_id,
                    tags=len(tags),
                )
            result = reader.run_inventory(tags, protocol)
            per_reader[reader_id] = result
            round_time = max(round_time, result.stats.total_time)
        makespan += round_time
    covered = deployment.covered_tags()
    identified = sum(1 for t in covered if t.identified and not t.lost)
    if obs_on:
        _OBS.tracer.end_span(
            makespan=makespan, identified=identified, covered=len(covered)
        )
    return MultiReaderResult(
        per_reader=per_reader,
        rounds=rounds,
        makespan=makespan,
        identified=identified,
        covered=len(covered),
        population=len(deployment.population),
        jammed=len(jammed_tags),
    )
