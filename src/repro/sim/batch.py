"""Round-batched Monte-Carlo kernels.

One evaluation grid point is ``rounds`` independent inventories, each
seeded by its own pre-spawned ``SeedSequence`` child.  The streamed path
(:func:`repro.experiments.parallel.run_rounds` with ``batched=False``)
executes them as a Python loop of :mod:`repro.sim.fast` kernel calls; this
module executes the *whole batch as one numpy program* while consuming the
per-round substreams in exactly the streamed order, so every per-round
:class:`~repro.sim.metrics.InventoryStats` -- and therefore every cached
:class:`~repro.experiments.runner.AggregateStats` -- is unchanged:

* :func:`fsa_fast_batch` / :func:`dfsa_fast_batch` -- frame-synchronous
  frontier over the live rounds.  Each frame step draws every live round's
  slot choices, evaluates the detector's miss probabilities *once* for all
  collisions of the step, and advances each round with sparse per-frame
  expressions: instead of materializing the dense ``frame_size`` slot
  array the streamed kernel bincounts, only the occupied slots (at most
  ``min(backlog, frame_size)`` of them) are touched, and frame airtime /
  identification delays come from occupancy-class counts and prefix sums.
* :func:`bt_fast_batch` -- replays the level-synchronous walk of
  :func:`repro.sim.fast.bt_fast` (two vectorized RNG calls per tree
  level), round by round to bound memory, with the vectorized
  :meth:`~repro.sim.metrics.DelayStats.from_array` statistics.

Bit-identity to the streamed path holds whenever every slot duration is an
integer multiple of the float granule (the paper's timing: ``tau = 1`` and
integer bit counts), because then every partial sum the two formulations
compute is exact in float64; with exotic non-integer timing the results
agree to normal float rounding instead.  ``tests/sim/test_batch.py`` and
the ``batch-vs-streamed`` verify oracle assert the field-by-field identity
on the default timing for every protocol × detector in the grid.

Misdetection policy is ``"paper"`` only, like :mod:`repro.sim.fast`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.core.detector import CollisionDetector
from repro.core.timing import TimingModel
from repro.obs.instruments import record_kernel_stats
from repro.obs.profiling import profiled
from repro.obs.state import STATE as _OBS
from repro.sim.fast import (
    _bt_finalize,
    _bt_walk,
    _duration_lut,
    _miss_eval,
)
from repro.sim.metrics import DelayStats, InventoryStats, SlotCounts

__all__ = [
    "BatchResult",
    "fsa_fast_batch",
    "dfsa_fast_batch",
    "bt_fast_batch",
    "stats_equal",
]


@dataclass(frozen=True)
class BatchResult:
    """All rounds of one batched grid point, in round order."""

    runs: tuple[InventoryStats, ...]

    def aggregate(self):
        """Round-averaged stats, identical to the streamed aggregation."""
        # Imported lazily: experiments.parallel imports this module.
        from repro.experiments.runner import AggregateStats

        return AggregateStats.from_runs(list(self.runs))


def _generators(streams: Sequence) -> list[np.random.Generator]:
    """One PCG64 generator per round, exactly as ``run_rounds`` builds
    them from the spawned children (already-built generators pass
    through, e.g. for golden pins against the streamed kernels)."""
    return [
        s
        if isinstance(s, np.random.Generator)
        else np.random.Generator(np.random.PCG64(s))
        for s in streams
    ]


def _tree_equal(x, y) -> bool:
    if isinstance(x, dict):
        return (
            isinstance(y, dict)
            and x.keys() == y.keys()
            and all(_tree_equal(x[k], y[k]) for k in x)
        )
    if isinstance(x, float) and isinstance(y, float):
        return x == y or (math.isnan(x) and math.isnan(y))
    return x == y


def stats_equal(a: InventoryStats, b: InventoryStats) -> bool:
    """Field-by-field equality, treating NaN == NaN (empty delay stats)."""
    return _tree_equal(asdict(a), asdict(b))


def _frame_occupancy(
    rng: np.random.Generator, backlog: int, frame_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Occupied slot indices and their multiplicities, in slot order.

    Consumes exactly the streamed kernel's draw
    (``rng.integers(0, frame_size, backlog)``).  Dense frames extract the
    occupancy from a bincount; sparse ones (backlog far below the frame
    size) sort the draws instead, avoiding the O(frame_size) scan.
    """
    draws = rng.integers(0, frame_size, backlog)
    if 2 * backlog >= frame_size:
        # Dense frame: bincount's O(frame_size) scan beats sorting
        # (measured crossover near backlog ~ frame_size / 2).
        occ = np.bincount(draws)
        slots = np.flatnonzero(occ)
        return slots, occ[slots]
    ds = np.sort(draws)
    first = np.empty(ds.size, dtype=bool)
    first[0] = True
    np.not_equal(ds[1:], ds[:-1], out=first[1:])
    slots = ds[first]
    starts = np.flatnonzero(first)
    counts = np.empty(starts.size, dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = ds.size - starts[-1]
    return slots, counts


class _AlohaRound:
    """Mutable per-round accumulator of the frame-synchronous engine."""

    __slots__ = (
        "rng",
        "remaining",
        "frame_size",
        "frames",
        "t",
        "n0",
        "n1",
        "nc",
        "missed",
        "fdata",
    )

    def __init__(self, rng, n_tags: int, frame_size: int) -> None:
        self.rng = rng
        self.remaining = n_tags
        self.frame_size = frame_size
        self.frames = 0
        self.t = 0.0
        self.n0 = self.n1 = self.nc = 0
        self.missed = 0
        # Per frame with >= 1 single: (t_start, slots, coll, miss, f1); the
        # identification delays are reconstructed in one flat pass at
        # finalize time instead of per frame.
        self.fdata: list[tuple] = []


def _aloha_batch(
    n_tags: int,
    frame_size: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rngs: list[np.random.Generator],
    collect_delays: bool,
    confirm_frame: bool,
    estimator=None,
    min_frame_size: int = 1,
    max_frame_size: int = 1 << 15,
    max_frames: int = 100_000,
    engine: str = "fast_fsa",
) -> tuple[InventoryStats, ...]:
    """The shared FSA/DFSA frame-synchronous batch engine.

    ``estimator is None`` runs fixed-frame FSA (with the optional
    confirmation frame); otherwise each round resizes its next frame from
    its own observation, like ``dfsa_fast``.
    """
    lut = _duration_lut(detector, timing)
    d0, d1, dc = float(lut[0]), float(lut[1]), float(lut[2])
    miss_fn = _miss_eval(detector, n_tags)
    obs_on = _OBS.enabled
    if estimator is not None:
        from repro.protocols.estimators import FrameObservation
    rounds = [_AlohaRound(rng, n_tags, frame_size) for rng in rngs]
    runs: list[InventoryStats | None] = [None] * len(rounds)

    def finalize(idx: int, st: _AlohaRound) -> None:
        if confirm_frame:
            # The knowledge-free reader issues one final frame and reads
            # it all-idle before concluding the inventory is complete.
            st.frames += 1
            st.n0 += st.frame_size
            st.t += st.frame_size * d0
        if st.fdata:
            # One flat pass over every recorded frame.  The streamed
            # per-frame formula is: end of occupied slot j (slot index
            # s_j) = t_start + cumsum(dur_occ)[j] + (s_j - j) * d0.  With
            # G the cumsum over the *concatenation* of the frames'
            # dur_occ, the within-frame cumsum at global index g is
            # G[g] - G[start_f - 1], and j = g - start_f, so
            #   ends[g] = (t_start_f - baseG_f + start_f * d0)
            #             + G[g] + (slots[g] - g) * d0
            # -- exact, and therefore bit-identical to the streamed
            # value, because integer-valued durations make every term an
            # exact float64 integer (slots[g] - g may go negative across
            # frame boundaries; the products stay exact).
            n_f = len(st.fdata)
            slots_all = np.concatenate([f[1] for f in st.fdata])
            coll_all = np.concatenate([f[2] for f in st.fdata])
            miss_cat = np.concatenate([f[3] for f in st.fdata])
            dur = np.where(coll_all, dc, d1)
            if miss_cat.size and miss_cat.any():
                # Missed collisions run the ID phase: single-slot airtime.
                dur[np.flatnonzero(coll_all)[miss_cat]] = d1
            g_sum = np.cumsum(dur)
            sizes = np.array(
                [f[1].size for f in st.fdata], dtype=np.int64
            )
            starts = np.cumsum(sizes) - sizes
            base = np.empty(n_f, dtype=np.float64)
            base[0] = 0.0
            base[1:] = g_sum[starts[1:] - 1]
            t_starts = np.array(
                [f[0] for f in st.fdata], dtype=np.float64
            )
            # Only the single slots need their end times materialized.
            si = np.flatnonzero(~coll_all)
            f1s = np.array([f[4] for f in st.fdata], dtype=np.int64)
            off = np.repeat(t_starts - base + starts * d0, f1s)
            all_delays = off + g_sum[si] + (slots_all[si] - si) * d0
            st.fdata = []
        else:
            all_delays = np.empty(0, dtype=np.float64)
        stats = InventoryStats(
            n_tags=n_tags,
            frames=st.frames,
            true_counts=SlotCounts(st.n0, st.n1, st.nc),
            detected_counts=SlotCounts(
                st.n0, st.n1 + st.missed, st.nc - st.missed
            ),
            total_time=st.t,
            accuracy=1.0 if st.nc == 0 else (st.nc - st.missed) / st.nc,
            # Frames are appended in time order and each frame's singles
            # are in slot order, so the concatenated delays are already
            # ascending.
            delay=DelayStats.from_array(all_delays, assume_sorted=True),
            utilization=(
                (st.n1 * timing.id_bits * timing.tau / st.t) if st.t else 0.0
            ),
            missed_collisions=st.missed,
            false_collisions=0,
            lost_tags=0,
        )
        if obs_on:
            record_kernel_stats(engine, stats)
        runs[idx] = stats

    live = []
    for idx, st in enumerate(rounds):
        if st.remaining > 0:
            live.append(idx)
        else:
            finalize(idx, st)
    while live:
        # Phase 1: every live round draws its frame and extracts the
        # occupied slots; misdetection uniforms are drawn per round (the
        # streamed call order) but compared in one flat detector pass.
        step: list[tuple] = []
        m_parts: list[np.ndarray] = []
        u_parts: list[np.ndarray] = []
        for idx in live:
            st = rounds[idx]
            if estimator is not None and st.frames >= max_frames:
                raise RuntimeError(
                    f"dfsa_fast_batch exceeded max_frames={max_frames}"
                )
            st.frames += 1
            slots, counts = _frame_occupancy(
                st.rng, st.remaining, st.frame_size
            )
            coll = counts >= 2
            m = counts[coll]
            if m.size:
                m_parts.append(m)
                u_parts.append(st.rng.random(m.size))
            step.append((idx, slots, coll, m))
        # Phase 2: one miss-probability evaluation for the whole step.
        if m_parts:
            miss_all = np.concatenate(u_parts) < miss_fn(
                np.concatenate(m_parts)
            )
        else:
            miss_all = np.empty(0, dtype=bool)
        # Phase 3: sparse per-round accounting.
        offset = 0
        nxt: list[int] = []
        for idx, slots, coll, m in step:
            st = rounds[idx]
            fc = m.size
            miss = miss_all[offset : offset + fc]
            offset += fc
            n_occ = slots.size
            f1 = n_occ - fc
            f0 = st.frame_size - n_occ
            fm = int(miss.sum()) if fc else 0
            if collect_delays and f1 > 0:
                st.fdata.append((st.t, slots, coll, miss, f1))
            st.t += f0 * d0 + (f1 + fm) * d1 + (fc - fm) * dc
            st.n0 += f0
            st.n1 += f1
            st.nc += fc
            st.missed += fm
            st.remaining = int(m.sum())
            if st.remaining > 0:
                if estimator is not None:
                    backlog = estimator.backlog(
                        FrameObservation(
                            frame_size=st.frame_size,
                            idle=f0,
                            single=f1,
                            collided=fc,
                        )
                    )
                    st.frame_size = max(
                        min_frame_size, min(max_frame_size, max(1, backlog))
                    )
                nxt.append(idx)
            else:
                finalize(idx, st)
        live = nxt
    return tuple(runs)  # type: ignore[arg-type]


@profiled("batch.fsa_fast_batch")
def fsa_fast_batch(
    n_tags: int,
    frame_size: int,
    detector: CollisionDetector,
    timing: TimingModel,
    streams: Sequence,
    collect_delays: bool = True,
    confirm_frame: bool = True,
) -> BatchResult:
    """All rounds of a fixed-frame FSA grid point as one batched program.

    ``streams`` is the round-ordered sequence of ``SeedSequence`` children
    (or ready generators); round *i* consumes its stream exactly like
    ``fsa_fast`` does, so the per-round stats match the streamed loop
    field for field.
    """
    if n_tags < 0 or frame_size < 1:
        raise ValueError("need n_tags >= 0 and frame_size >= 1")
    return BatchResult(
        runs=_aloha_batch(
            n_tags,
            frame_size,
            detector,
            timing,
            _generators(streams),
            collect_delays,
            confirm_frame,
            engine="fast_fsa",
        )
    )


@profiled("batch.dfsa_fast_batch")
def dfsa_fast_batch(
    n_tags: int,
    initial_frame_size: int,
    estimator,
    detector: CollisionDetector,
    timing: TimingModel,
    streams: Sequence,
    min_frame_size: int = 1,
    max_frame_size: int = 1 << 15,
    collect_delays: bool = True,
    max_frames: int = 100_000,
) -> BatchResult:
    """All rounds of a dynamic-FSA grid point as one batched program.

    The estimator instance is shared across rounds, which is safe for the
    built-in estimators (pure functions of one ``FrameObservation``); a
    *stateful* estimator would leak state between interleaved rounds and
    must use the streamed ``dfsa_fast`` loop instead.
    """
    if n_tags < 0 or initial_frame_size < 1:
        raise ValueError("need n_tags >= 0 and initial_frame_size >= 1")
    if not 1 <= min_frame_size <= max_frame_size:
        raise ValueError("need 1 <= min_frame_size <= max_frame_size")
    return BatchResult(
        runs=_aloha_batch(
            n_tags,
            initial_frame_size,
            detector,
            timing,
            _generators(streams),
            collect_delays,
            confirm_frame=False,
            estimator=estimator,
            min_frame_size=min_frame_size,
            max_frame_size=max_frame_size,
            max_frames=max_frames,
            engine="fast_dfsa",
        )
    )


@profiled("batch.bt_fast_batch")
def bt_fast_batch(
    n_tags: int,
    detector: CollisionDetector,
    timing: TimingModel,
    streams: Sequence,
    collect_delays: bool = True,
) -> BatchResult:
    """All rounds of a binary-tree grid point, batched.

    Each round runs the level-synchronous frontier walk of
    :func:`repro.sim.fast.bt_fast` (identical draw order) with the
    detector dispatch and duration LUT hoisted across the whole batch and
    the vectorized delay statistics; rounds are walked one at a time to
    keep peak memory at one tree (~2.885·n slots) instead of R trees.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be >= 0")
    lut = _duration_lut(detector, timing)
    miss_fn = _miss_eval(detector, n_tags)
    obs_on = _OBS.enabled
    runs = []
    for rng in _generators(streams):
        levels = _bt_walk(n_tags, rng)
        n0, n1, nc, missed, t, delays = _bt_finalize(
            levels, miss_fn, lut, collect_delays
        )
        stats = InventoryStats(
            n_tags=n_tags,
            frames=1,  # tree protocols run one continuous logical frame
            true_counts=SlotCounts(n0, n1, nc),
            detected_counts=SlotCounts(n0, n1 + missed, nc - missed),
            total_time=t,
            accuracy=1.0 if nc == 0 else (nc - missed) / nc,
            utilization=(
                (n1 * timing.id_bits * timing.tau / t) if t else 0.0
            ),
            # ``_bt_finalize`` emits single slots in slot order, and slot
            # end times increase with position, so ``delays`` is ascending.
            delay=DelayStats.from_array(delays, assume_sorted=True),
            missed_collisions=missed,
            false_collisions=0,
            lost_tags=0,
        )
        if obs_on:
            record_kernel_stats("fast_bt", stats)
        runs.append(stats)
    return BatchResult(runs=tuple(runs))
