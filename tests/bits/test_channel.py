"""Channel model tests: superposition, idle semantics, noise, accounting."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.channel import Channel
from repro.bits.rng import make_rng


class TestSuperposition:
    def test_idle_slot_returns_none(self):
        ch = Channel()
        assert ch.transmit([]) is None

    def test_single_transmission_passes_through(self):
        ch = Channel()
        v = BitVector.from_bitstring("0101")
        assert ch.transmit([v]) == v

    def test_overlap_is_boolean_sum(self):
        ch = Channel()
        a = BitVector.from_bitstring("011001")
        b = BitVector.from_bitstring("010010")
        assert ch.transmit([a, b]) == BitVector.from_bitstring("011011")

    def test_length_mismatch_rejected(self):
        ch = Channel()
        with pytest.raises(ValueError):
            ch.transmit([BitVector(0, 4), BitVector(0, 5)])


class TestStats:
    def test_accounting(self):
        ch = Channel()
        ch.transmit([])
        ch.transmit([BitVector(1, 8)])
        ch.transmit([BitVector(1, 8), BitVector(2, 8)])
        assert ch.stats.slots == 3
        assert ch.stats.transmissions == 3
        assert ch.stats.bits_on_air == 24

    def test_reset(self):
        ch = Channel()
        ch.transmit([BitVector(1, 8)])
        ch.stats.reset()
        assert ch.stats.slots == 0
        assert ch.stats.bits_on_air == 0


class TestNoise:
    def test_noise_requires_rng(self):
        with pytest.raises(ValueError, match="rng is required"):
            Channel(bit_error_rate=0.1)

    def test_invalid_ber(self):
        with pytest.raises(ValueError):
            Channel(bit_error_rate=1.0)
        with pytest.raises(ValueError):
            Channel(bit_error_rate=-0.1)

    def test_zero_ber_never_corrupts(self):
        ch = Channel()
        v = BitVector.from_bitstring("10101010")
        for _ in range(20):
            assert ch.transmit([v]) == v

    def test_high_ber_flips_bits(self):
        ch = Channel(bit_error_rate=0.5, rng=make_rng(7))
        v = BitVector.zeros(64)
        results = [ch.transmit([v]) for _ in range(10)]
        assert any(not r.is_zero() for r in results)
        assert ch.stats.flipped_bits > 0

    def test_flip_count_roughly_matches_rate(self):
        ch = Channel(bit_error_rate=0.25, rng=make_rng(11))
        v = BitVector.zeros(100)
        total = 0
        for _ in range(100):
            out = ch.transmit([v])
            total += out.popcount()
        # 100 rounds x 100 bits x 0.25 = 2500 expected flips.
        assert 2000 < total < 3000

    def test_idle_slot_immune_to_noise(self):
        ch = Channel(bit_error_rate=0.9, rng=make_rng(3))
        assert ch.transmit([]) is None
