"""Unit and property tests for the BitVector algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector, pack_ints, unpack_ints
from repro.verify.strategies import bitvectors, sized_bitvectors


class TestConstruction:
    def test_basic(self):
        v = BitVector(0b1010, 4)
        assert v.value == 10
        assert v.length == 4
        assert len(v) == 4

    def test_value_too_large(self):
        with pytest.raises(ValueError, match="does not fit"):
            BitVector(16, 4)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            BitVector(-1, 4)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            BitVector(0, -1)

    def test_empty(self):
        v = BitVector(0, 0)
        assert len(v) == 0
        assert not v
        assert v.to_bitstring() == ""

    def test_zeros_ones(self):
        assert BitVector.zeros(5).value == 0
        assert BitVector.ones(5).value == 31

    def test_from_bits(self):
        assert BitVector.from_bits([1, 0, 1]).value == 0b101

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([1, 2, 0])

    def test_from_bitstring(self):
        v = BitVector.from_bitstring("011011")
        assert v.value == 0b011011
        assert v.length == 6

    def test_from_bitstring_rejects_garbage(self):
        with pytest.raises(ValueError):
            BitVector.from_bitstring("01x1")

    def test_from_bytes(self):
        v = BitVector.from_bytes(b"\xa5")
        assert v.to_bitstring() == "10100101"

    def test_from_bytes_truncated(self):
        v = BitVector.from_bytes(b"\xa5", length=4)
        assert v.to_bitstring() == "1010"

    def test_from_bytes_length_too_long(self):
        with pytest.raises(ValueError):
            BitVector.from_bytes(b"\xa5", length=9)

    def test_random_length_and_range(self, rng):
        for length in (1, 8, 63, 64, 96, 128):
            v = BitVector.random(length, rng.generator)
            assert v.length == length

    def test_random_zero_length(self, rng):
        assert BitVector.random(0, rng.generator).length == 0


class TestPaperAlgebra:
    def test_paper_overlap_example(self):
        # Section I: (011001) ∨ (010010) = (011011)
        a = BitVector.from_bitstring("011001")
        b = BitVector.from_bitstring("010010")
        assert (a | b) == BitVector.from_bitstring("011011")

    def test_complement(self):
        v = BitVector.from_bitstring("0110")
        assert (~v).to_bitstring() == "1001"

    def test_double_complement_is_identity(self):
        v = BitVector.from_bitstring("010011")
        assert ~~v == v

    def test_concat(self):
        r = BitVector.from_bitstring("01")
        c = BitVector.from_bitstring("10")
        assert (r + c).to_bitstring() == "0110"

    def test_or_length_mismatch(self):
        with pytest.raises(ValueError, match="equal lengths"):
            BitVector(0, 4) | BitVector(0, 5)

    def test_superpose(self):
        vecs = [BitVector(1, 4), BitVector(2, 4), BitVector(8, 4)]
        assert BitVector.superpose(vecs).value == 11

    def test_superpose_single(self):
        v = BitVector(5, 4)
        assert BitVector.superpose([v]) == v

    def test_superpose_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BitVector.superpose([])

    def test_superpose_length_mismatch(self):
        with pytest.raises(ValueError):
            BitVector.superpose([BitVector(0, 3), BitVector(0, 4)])

    def test_xor_and(self):
        a = BitVector.from_bitstring("1100")
        b = BitVector.from_bitstring("1010")
        assert (a ^ b).to_bitstring() == "0110"
        assert (a & b).to_bitstring() == "1000"


class TestIndexing:
    def test_bit_msb_first(self):
        v = BitVector.from_bitstring("100")
        assert v.bit(0) == 1
        assert v.bit(1) == 0
        assert v.bit(2) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(0, 3).bit(3)

    def test_getitem_int_and_negative(self):
        v = BitVector.from_bitstring("101")
        assert v[0] == 1
        assert v[-1] == 1
        assert v[1] == 0

    def test_slice(self):
        v = BitVector.from_bitstring("110010")
        assert v[:3] == BitVector.from_bitstring("110")
        assert v[3:] == BitVector.from_bitstring("010")
        assert v[2:4] == BitVector.from_bitstring("00")

    def test_slice_empty(self):
        v = BitVector.from_bitstring("101")
        assert v[2:2].length == 0

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 4)[::2]

    def test_iter(self):
        assert list(BitVector.from_bitstring("1011")) == [1, 0, 1, 1]

    def test_startswith(self):
        v = BitVector.from_bitstring("10110")
        assert v.startswith(BitVector.from_bitstring("101"))
        assert not v.startswith(BitVector.from_bitstring("100"))
        assert v.startswith(BitVector(0, 0))
        assert not v.startswith(BitVector.from_bitstring("101100"))


class TestConversions:
    def test_roundtrip_bits(self):
        v = BitVector.from_bitstring("0110101")
        assert BitVector.from_bits(v.to_bits()) == v

    def test_to_bytes_pads_right(self):
        v = BitVector.from_bitstring("101")
        assert v.to_bytes() == bytes([0b10100000])

    def test_popcount(self):
        assert BitVector.from_bitstring("101101").popcount() == 4

    def test_is_zero_and_bool(self):
        assert BitVector.zeros(8).is_zero()
        assert not BitVector.zeros(8)
        assert BitVector(1, 8)

    def test_hash_and_eq_distinguish_length(self):
        assert BitVector(0, 4) != BitVector(0, 5)
        assert hash(BitVector(3, 4)) == hash(BitVector(3, 4))

    def test_eq_other_type(self):
        assert BitVector(3, 4) != 3

    def test_repr_short_and_long(self):
        assert "BitVector('0011')" == repr(BitVector(3, 4))
        assert "length=64" in repr(BitVector(3, 64))


class TestPackUnpack:
    def test_roundtrip(self):
        arr = np.array([0, 1, 255], dtype=np.uint64)
        vecs = pack_ints(arr, 8)
        assert [v.length for v in vecs] == [8, 8, 8]
        assert list(unpack_ints(vecs)) == [0, 1, 255]

    def test_pack_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_ints(np.array([256], dtype=np.uint64), 8)

    def test_pack_rejects_wide(self):
        with pytest.raises(ValueError):
            pack_ints(np.array([0]), 65)

    def test_unpack_rejects_mixed_lengths(self):
        with pytest.raises(ValueError):
            unpack_ints([BitVector(0, 4), BitVector(0, 5)])

    def test_unpack_empty(self):
        assert unpack_ints([]).size == 0


class TestProperties:
    @given(bitvectors(min_length=1), bitvectors(min_length=1))
    def test_or_commutes_when_same_length(self, a, b):
        if a.length == b.length:
            assert a | b == b | a

    @given(bitvectors(min_length=1))
    def test_or_idempotent(self, a):
        assert a | a == a

    @given(bitvectors(min_length=1))
    def test_complement_involution(self, a):
        assert ~~a == a

    @given(bitvectors(min_length=1))
    def test_complement_disjoint_and_covering(self, a):
        assert (a & ~a).is_zero()
        assert (a | ~a) == BitVector.ones(a.length)

    @given(bitvectors(), bitvectors())
    def test_concat_length_and_split(self, a, b):
        c = a + b
        assert c.length == a.length + b.length
        assert c[: a.length] == a
        assert c[a.length :] == b

    @given(bitvectors())
    def test_bitstring_roundtrip(self, a):
        assert BitVector.from_bitstring(a.to_bitstring()) == a

    @given(bitvectors(min_length=1))
    def test_popcount_complement(self, a):
        assert a.popcount() + (~a).popcount() == a.length

    @given(st.lists(sized_bitvectors(8), min_size=1, max_size=6))
    def test_superpose_is_fold_of_or(self, vecs):
        acc = vecs[0]
        for v in vecs[1:]:
            acc = acc | v
        assert BitVector.superpose(vecs) == acc

    @given(st.lists(sized_bitvectors(8), min_size=2, max_size=6))
    def test_superpose_dominates_members(self, vecs):
        s = BitVector.superpose(vecs)
        for v in vecs:
            assert (s | v) == s  # every member is absorbed
