"""FM0 / Miller line-code tests."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.bits.bitvec import BitVector
from repro.bits.linecode import FM0Codec, LineCodeError, MillerCodec
from repro.verify.strategies import data_vectors


class TestFM0:
    def test_two_halves_per_bit(self):
        codec = FM0Codec()
        wf = codec.encode(BitVector.from_bitstring("101"))
        assert wf.length == 6

    def test_boundary_always_inverts(self):
        codec = FM0Codec(initial_level=1)
        wf = codec.encode(BitVector.from_bitstring("1100"))
        prev = 1
        for k in range(0, wf.length, 2):
            assert wf.bit(k) != prev
            prev = wf.bit(k + 1)

    def test_zero_has_mid_inversion_one_does_not(self):
        codec = FM0Codec()
        wf0 = codec.encode(BitVector.from_bitstring("0"))
        wf1 = codec.encode(BitVector.from_bitstring("1"))
        assert wf0.bit(0) != wf0.bit(1)
        assert wf1.bit(0) == wf1.bit(1)

    @given(data_vectors())
    def test_roundtrip(self, data):
        codec = FM0Codec()
        assert codec.decode(codec.encode(data)) == data

    @given(data_vectors())
    def test_roundtrip_level0(self, data):
        codec = FM0Codec(initial_level=0)
        assert codec.decode(codec.encode(data)) == data

    def test_odd_waveform_rejected(self):
        with pytest.raises(LineCodeError, match="even"):
            FM0Codec().decode(BitVector(0, 5))

    def test_missing_inversion_detected(self):
        codec = FM0Codec(initial_level=1)
        # First half-symbol equal to the initial level: rule violation.
        bad = BitVector.from_bitstring("1100")
        assert not codec.is_valid(bad)

    def test_superposition_usually_invalid(self):
        """The physical root of collision detection: two overlapped FM0
        waveforms generally violate the inversion rules."""
        codec = FM0Codec()
        a = codec.encode(BitVector.from_bitstring("1010"))
        b = codec.encode(BitVector.from_bitstring("0001"))
        assert not codec.is_valid(a | b)

    def test_bad_initial_level(self):
        with pytest.raises(ValueError):
            FM0Codec(initial_level=2)


class TestMiller:
    @pytest.mark.parametrize("m", [1, 2, 4, 8])
    @given(data=data_vectors(max_bits=16))
    def test_roundtrip(self, m, data):
        codec = MillerCodec(m=m)
        wf = codec.encode(data)
        assert wf.length == data.length * 2 * m
        assert codec.decode(wf) == data

    def test_bad_m(self):
        with pytest.raises(ValueError):
            MillerCodec(m=3)

    def test_length_validation(self):
        with pytest.raises(LineCodeError, match="multiple"):
            MillerCodec(m=2).decode(BitVector(0, 6))

    def test_one_inverts_mid_symbol(self):
        codec = MillerCodec(m=1)
        wf = codec.encode(BitVector.from_bitstring("1"))
        assert wf.bit(0) != wf.bit(1)

    def test_consecutive_zeros_invert_at_boundary(self):
        codec = MillerCodec(m=1, initial_level=1)
        wf = codec.encode(BitVector.from_bitstring("00"))
        # Symbol 1: flat at level 1; symbol 2: boundary inversion -> flat 0.
        assert wf.to_bits() == [1, 1, 0, 0]

    def test_subcarrier_repetition(self):
        m1 = MillerCodec(m=1).encode(BitVector.from_bitstring("10"))
        m4 = MillerCodec(m=4).encode(BitVector.from_bitstring("10"))
        expanded = []
        for lvl in m1:
            expanded.extend([lvl] * 4)
        assert m4.to_bits() == expanded

    def test_glitch_detected(self):
        codec = MillerCodec(m=2)
        wf = codec.encode(BitVector.from_bitstring("10"))
        glitched = wf ^ BitVector(1 << (wf.length - 1), wf.length)
        assert not codec.is_valid(glitched)

    def test_backlink_factor_matches_gen2_model(self):
        """The Gen2 timing model's Miller factor equals the codec's
        waveform expansion."""
        from repro.core.gen2_timing import Gen2TimingModel

        for m in (1, 2, 4, 8):
            codec = MillerCodec(m=m)
            g2 = Gen2TimingModel(miller=m)
            data = BitVector.from_bitstring("1011")
            halves = codec.encode(data).length
            # halves per bit == 2m; bit time scales linearly with m.
            assert halves == data.length * 2 * m
            assert g2.backlink_bit_time == pytest.approx(
                m * Gen2TimingModel(miller=1).backlink_bit_time
            )
