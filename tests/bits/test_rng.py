"""RNG stream tests: reproducibility, independence of substreams."""

from __future__ import annotations

import numpy as np

from repro.bits.rng import RngStream, make_rng


class TestReproducibility:
    def test_same_seed_same_draws(self):
        a = make_rng(99).integers(0, 1 << 30, size=10)
        b = make_rng(99).integers(0, 1 << 30, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=10)
        b = make_rng(2).integers(0, 1 << 30, size=10)
        assert not np.array_equal(a, b)

    def test_spawned_children_are_deterministic(self):
        kids1 = make_rng(5).spawn(3)
        kids2 = make_rng(5).spawn(3)
        for k1, k2 in zip(kids1, kids2):
            assert np.array_equal(
                k1.integers(0, 100, size=5), k2.integers(0, 100, size=5)
            )

    def test_children_independent_of_parent_consumption(self):
        """Drawing from the parent must not shift its children."""
        r1 = make_rng(5)
        r1.integers(0, 100, size=50)  # consume
        c1 = r1.spawn(1)[0]
        r2 = make_rng(5)
        c2 = r2.spawn(1)[0]
        assert np.array_equal(
            c1.integers(0, 100, size=5), c2.integers(0, 100, size=5)
        )


class TestSpawning:
    def test_children_differ_from_each_other(self):
        kids = make_rng(7).spawn(2)
        a = kids[0].integers(0, 1 << 30, size=10)
        b = kids[1].integers(0, 1 << 30, size=10)
        assert not np.array_equal(a, b)

    def test_child_shortcut(self):
        r = make_rng(7)
        assert isinstance(r.child(), RngStream)

    def test_sequential_children_distinct(self):
        r = make_rng(7)
        a = r.child().integers(0, 1 << 30, size=10)
        b = r.child().integers(0, 1 << 30, size=10)
        assert not np.array_equal(a, b)


class TestConvenience:
    def test_draw_methods(self):
        r = make_rng(0)
        assert 0 <= r.random() < 1
        assert r.integers(0, 10) in range(10)
        assert r.exponential(2.0) >= 0
        assert 0 <= r.binomial(10, 0.5) <= 10
        assert 0.0 <= r.uniform(0, 1) <= 1.0
        assert r.choice([1, 2, 3]) in (1, 2, 3)
        x = list(range(10))
        r.shuffle(x)
        assert sorted(x) == list(range(10))

    def test_repr_contains_entropy(self):
        assert "entropy" in repr(make_rng(42))

    def test_none_seed_allowed(self):
        assert isinstance(make_rng(None), RngStream)
