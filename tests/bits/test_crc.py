"""CRC engine tests: catalogue check values, engine cross-validation,
error-detection properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector
from repro.bits.crc import (
    CRC5_EPC,
    CRC16_BUYPASS,
    CRC16_CCITT_FALSE,
    CRC16_GEN2,
    CRC16_IBM,
    CRC32_IEEE,
    CrcEngine,
    CrcSpec,
    reflect,
)

ALL_SPECS = [
    CRC5_EPC,
    CRC16_CCITT_FALSE,
    CRC16_GEN2,
    CRC16_BUYPASS,
    CRC16_IBM,
    CRC32_IEEE,
]
TABLE_SPECS = [s for s in ALL_SPECS if s.width >= 8]


class TestReflect:
    def test_basic(self):
        assert reflect(0b001, 3) == 0b100
        assert reflect(0xF0, 8) == 0x0F

    def test_involution(self):
        for v in range(256):
            assert reflect(reflect(v, 8), 8) == v


class TestCatalogue:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_bitwise_check_value(self, spec):
        assert CrcEngine(spec, "bitwise").self_test()

    @pytest.mark.parametrize("spec", TABLE_SPECS, ids=lambda s: s.name)
    def test_table_check_value(self, spec):
        assert CrcEngine(spec, "table").self_test()

    def test_crc32_known_value(self):
        # Independently known: CRC-32 of "123456789" is 0xCBF43926.
        assert CrcEngine(CRC32_IEEE).compute_bytes(b"123456789") == 0xCBF43926

    def test_buypass_published_check_value(self):
        # Independently known: CRC-16/BUYPASS of "123456789" is 0xFEE8.
        assert CrcEngine(CRC16_BUYPASS).compute_bytes(b"123456789") == 0xFEE8

    def test_ibm_ffff_published_check_value(self):
        # Poly 0x8005, init 0xFFFF, unreflected (catalogue CRC-16/CMS):
        # check value 0xAEE7.
        assert CrcEngine(CRC16_IBM).compute_bytes(b"123456789") == 0xAEE7

    def test_buypass_and_ibm_differ_only_by_init(self):
        assert CRC16_BUYPASS.poly == CRC16_IBM.poly == 0x8005
        assert CRC16_BUYPASS.init == 0x0000
        assert CRC16_IBM.init == 0xFFFF
        # Same computation from a different starting register: the two
        # must agree on the empty message iff the inits agree -- they
        # don't, so the check values must differ.
        assert (
            CrcEngine(CRC16_BUYPASS).compute_bytes(b"")
            != CrcEngine(CRC16_IBM).compute_bytes(b"")
        )

    def test_gen2_is_complement_of_ccitt_false(self):
        # CRC-16/GEN2 (GENIBUS) differs from CCITT-FALSE only by the final
        # complement.
        msg = b"EPC Gen2"
        a = CrcEngine(CRC16_CCITT_FALSE).compute_bytes(msg)
        b = CrcEngine(CRC16_GEN2).compute_bytes(msg)
        assert a ^ b == 0xFFFF


class TestEngineValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown CRC method"):
            CrcEngine(CRC32_IEEE, "magic")

    def test_table_requires_width_8(self):
        with pytest.raises(ValueError, match="width >= 8"):
            CrcEngine(CRC5_EPC, "table")

    def test_spec_rejects_oversized_poly(self):
        with pytest.raises(ValueError):
            CrcSpec("bad", 4, 0x10, 0, False, False, 0, 0)

    def test_spec_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            CrcSpec("bad", 0, 0, 0, False, False, 0, 0)

    def test_table_memory_is_1kb_for_crc32(self):
        # Paper Table IV: a table-driven CRC-32 needs 1 KB.
        assert CrcEngine(CRC32_IEEE, "table").table_memory_bytes == 1024

    def test_table_memory_crc16(self):
        assert CrcEngine(CRC16_CCITT_FALSE, "table").table_memory_bytes == 512


class TestCrossValidation:
    @pytest.mark.parametrize("spec", TABLE_SPECS, ids=lambda s: s.name)
    @given(data=st.binary(min_size=0, max_size=32))
    def test_bitwise_equals_table_on_bytes(self, spec, data):
        bitwise = CrcEngine(spec, "bitwise").compute_bytes(data)
        table = CrcEngine(spec, "table").compute_bytes(data)
        assert bitwise == table

    @pytest.mark.parametrize("spec", TABLE_SPECS, ids=lambda s: s.name)
    def test_compute_bits_matches_compute_bytes(self, spec):
        data = b"\x01\x02\xfe"
        bits = BitVector.from_bytes(data)
        engine = CrcEngine(spec, "bitwise")
        assert engine.compute_bits(bits).to_int() == engine.compute_bytes(data)

    def test_compute_bits_table_path_whole_bytes(self):
        engine = CrcEngine(CRC16_CCITT_FALSE, "table")
        bits = BitVector.from_bytes(b"\xab\xcd")
        assert engine.compute_bits(bits).to_int() == engine.compute_bytes(
            b"\xab\xcd"
        )

    def test_non_byte_lengths_supported_bitwise(self):
        engine = CrcEngine(CRC16_CCITT_FALSE)
        out = engine.compute_bits(BitVector.from_bitstring("10110"))
        assert out.length == 16


class TestErrorDetection:
    """The properties that make CRC a collision detector in CRC-CD."""

    @given(st.integers(0, (1 << 64) - 1))
    def test_deterministic(self, value):
        engine = CrcEngine(CRC16_CCITT_FALSE)
        v = BitVector(value, 64)
        assert engine.compute_bits(v) == engine.compute_bits(v)

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 31))
    def test_single_bit_flip_always_detected(self, value, flip_pos):
        """Any single-bit error changes the CRC (minimum distance >= 2)."""
        engine = CrcEngine(CRC16_CCITT_FALSE)
        v = BitVector(value, 32)
        flipped = v ^ BitVector(1 << (31 - flip_pos), 32)
        assert engine.compute_bits(v) != engine.compute_bits(flipped)

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 30))
    def test_burst_of_two_detected(self, value, pos):
        engine = CrcEngine(CRC16_CCITT_FALSE)
        v = BitVector(value, 32)
        mask = BitVector(0b11 << (30 - pos), 32)
        assert engine.compute_bits(v) != engine.compute_bits(v ^ mask)

    def test_op_count_exceeds_100_for_64bit_ids(self, rng):
        """Paper Table IV: a CRC computation costs >100 instructions."""
        engine = CrcEngine(CRC32_IEEE, "bitwise")
        v = BitVector.random(64, rng.generator)
        engine.compute_bits(v)
        assert engine.last_op_count > 100

    def test_op_count_scales_linearly(self):
        """Complexity O(l): doubling the message ~doubles the work (the
        exact op count depends on how many feedback XORs fire, which is
        data-dependent, so allow 10% slack)."""
        engine = CrcEngine(CRC16_CCITT_FALSE, "bitwise")
        engine.compute_bits(BitVector.zeros(64))
        ops64 = engine.last_op_count
        engine.compute_bits(BitVector.zeros(128))
        ops128 = engine.last_op_count
        assert abs(ops128 - 2 * ops64) <= 0.1 * ops64
