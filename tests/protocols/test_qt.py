"""Query-tree protocol tests: determinism, starvation-freedom, bounds."""

from __future__ import annotations

from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.qt import QueryTree
from repro.sim.reader import Reader


def run_qt(pop, **kw):
    return Reader(QCDDetector(8)).run_inventory(pop.tags, QueryTree(**kw))


class TestCorrectness:
    def test_all_identified(self, make_population):
        pop = make_population(64, id_bits=16)
        result = run_qt(pop)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_sequential_ids_worst_case(self, make_population):
        """Clustered IDs force deep shared-prefix walks but must resolve."""
        pop = make_population(32, id_bits=16, layout="sequential")
        result = run_qt(pop)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_single_tag(self, make_population):
        pop = make_population(1, id_bits=8)
        result = run_qt(pop)
        assert result.stats.true_counts.single == 1

    def test_empty_population(self):
        proto = QueryTree()
        proto.start([])
        # The root probe runs once (idle) and the walk ends.
        reader = Reader(QCDDetector(8))
        result = reader.run_inventory([], proto)
        assert len(result.trace) <= 1


class TestDeterminism:
    """QT splits by ID bits, not random draws: no starvation."""

    def test_slot_count_reproducible(self, make_population):
        pop = make_population(20, id_bits=16)
        n1 = len(run_qt(pop).trace)
        pop.reset()
        n2 = len(run_qt(pop).trace)
        assert n1 == n2

    def test_duplicate_full_length_prefix_dropped(self, make_population):
        """A collision at a full-ID prefix (only possible with adversarial
        tags) must not extend the queue past the ID length."""
        from repro.protocols.qt import QueryTree
        from repro.bits.bitvec import BitVector

        pop = make_population(2, id_bits=4)
        proto = QueryTree()
        proto.start(pop.tags)
        full = BitVector(0, 4)
        proto._queue.clear()
        proto._queue.append(full)
        proto.feedback(SlotType.COLLIDED, pop.tags)
        assert len(proto._queue) == 0


class TestBounds:
    def test_max_slots_aborts(self, make_population):
        pop = make_population(32, id_bits=16)
        result = Reader(QCDDetector(8)).run_inventory(
            pop.tags, QueryTree(max_slots=10)
        )
        assert len(result.trace) <= 11

    def test_abort_flag_set(self, make_population):
        pop = make_population(32, id_bits=16)
        proto = QueryTree(max_slots=10)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert proto.aborted

    def test_queue_size_bounded_by_tree(self, make_population):
        """Total probes <= 2·(internal nodes) + leaves: linear in n for
        random IDs."""
        pop = make_population(50, id_bits=32)
        result = run_qt(pop)
        assert len(result.trace) < 50 * 10


class TestValidation:
    def test_mixed_id_lengths_rejected(self, make_population):
        from repro.bits.rng import make_rng
        from repro.tags.tag import Tag

        tags = [
            Tag(tag_id=0, id_bits=8, rng=make_rng(0)),
            Tag(tag_id=0, id_bits=16, rng=make_rng(1)),
        ]
        proto = QueryTree()
        try:
            proto.start(tags)
            raised = False
        except ValueError:
            raised = True
        assert raised
