"""Eom-Lee and MLE estimator tests."""

from __future__ import annotations

import pytest

from repro.protocols.estimators import (
    EomLeeEstimator,
    FrameObservation,
    LowerBoundEstimator,
    MleEstimator,
    SchouteEstimator,
    expected_slot_counts,
)


def obs_for(n: int, frame: int) -> FrameObservation:
    """The expected observation for a known n (rounded consistently)."""
    e0, e1, _ = expected_slot_counts(n, frame)
    i0, i1 = round(e0), round(e1)
    return FrameObservation(frame, i0, i1, frame - i0 - i1)


class TestEomLee:
    def test_k_limits(self):
        assert EomLeeEstimator._k(0.0) == 2.0
        assert EomLeeEstimator._k(1e-12) == 2.0
        # At rho = 1, k ≈ Schoute's 2.392.
        assert EomLeeEstimator._k(1.0) == pytest.approx(
            SchouteEstimator.COEFFICIENT, abs=1e-9
        )

    def test_k_monotone_in_rho(self):
        ks = [EomLeeEstimator._k(r) for r in (0.5, 1.0, 2.0, 4.0)]
        assert ks == sorted(ks)

    def test_no_collisions(self):
        est = EomLeeEstimator()
        assert est.estimate(FrameObservation(10, 7, 3, 0)) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EomLeeEstimator(tol=0)
        with pytest.raises(ValueError):
            EomLeeEstimator(max_iter=0)

    @pytest.mark.parametrize("n,frame", [(64, 64), (120, 64), (200, 64)])
    def test_beats_schoute_off_optimum(self, n, frame):
        """Above the ρ = 1 operating point Schoute's fixed 2.39
        underestimates; Eom-Lee's fixed point adapts."""
        o = obs_for(n, frame)
        eom = EomLeeEstimator().estimate(o)
        sch = SchouteEstimator().estimate(o)
        assert abs(eom - n) <= abs(sch - n) + 1.0

    def test_converges(self):
        est = EomLeeEstimator(tol=1e-6, max_iter=500)
        o = obs_for(150, 64)
        assert est.estimate(o) == pytest.approx(est.estimate(o))


class TestMle:
    @pytest.mark.parametrize("n,frame", [(50, 64), (100, 64), (64, 32)])
    def test_recovers_known_n(self, n, frame):
        o = obs_for(n, frame)
        assert MleEstimator().estimate(o) == pytest.approx(n, rel=0.2)

    def test_no_activity(self):
        assert MleEstimator().estimate(FrameObservation(8, 8, 0, 0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MleEstimator(max_factor=0.9)

    def test_at_least_lower_bound(self):
        o = FrameObservation(16, 2, 4, 10)
        assert MleEstimator().estimate(o) >= LowerBoundEstimator().estimate(o)

    def test_loglik_finite_at_extremes(self):
        o = FrameObservation(16, 0, 0, 16)
        ll = MleEstimator._loglik(1000, o)
        # All-collided at huge n is near-certain: ll -> 0 from below.
        assert -1e6 < ll <= 0


class TestInDfsa:
    @pytest.mark.parametrize(
        "estimator", [EomLeeEstimator(), MleEstimator()]
    )
    def test_drives_dfsa_to_completion(self, make_population, estimator):
        from repro.core.qcd import QCDDetector
        from repro.protocols.dfsa import DynamicFSA
        from repro.sim.reader import Reader

        pop = make_population(80)
        proto = DynamicFSA(initial_frame_size=8, estimator=estimator)
        result = Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert result.stats.true_counts.single == 80
