"""Gen2 Q-adaptive protocol tests."""

from __future__ import annotations

import pytest

from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.qadaptive import QAdaptive
from repro.sim.reader import Reader


def run_q(pop, **kw):
    return Reader(QCDDetector(8)).run_inventory(pop.tags, QAdaptive(**kw))


class TestCorrectness:
    def test_all_identified(self, make_population):
        pop = make_population(70)
        result = run_q(pop)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_small_population(self, make_population):
        pop = make_population(3)
        assert run_q(pop).stats.true_counts.single == 3

    def test_large_population_with_small_q(self, make_population):
        """Starting at Q=0 against 100 tags must still converge."""
        pop = make_population(100)
        result = run_q(pop, initial_q=0.0)
        assert result.stats.true_counts.single == 100


class TestQDynamics:
    def test_q_rises_under_collisions(self, make_population):
        pop = make_population(200)
        proto = QAdaptive(initial_q=1.0, c=0.5)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert max(proto.q_history) > 1.0

    def test_q_falls_on_idles(self, make_population):
        pop = make_population(2)
        proto = QAdaptive(initial_q=6.0, c=0.5)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert min(proto.q_history) < 6.0

    def test_q_clamped(self, make_population):
        pop = make_population(50)
        proto = QAdaptive(initial_q=15.0, c=0.5)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert all(0.0 <= q <= 15.0 for q in proto.q_history)

    def test_single_keeps_q(self):
        proto = QAdaptive(initial_q=4.0, c=0.3)
        proto.start([])
        proto.q_fp = 4.0
        proto.feedback(SlotType.SINGLE, [])
        assert proto.q_fp == 4.0


class TestValidation:
    def test_bad_q(self):
        with pytest.raises(ValueError):
            QAdaptive(initial_q=16.0)

    def test_bad_c(self):
        with pytest.raises(ValueError):
            QAdaptive(c=0.0)
        with pytest.raises(ValueError):
            QAdaptive(c=1.5)

    def test_better_than_undersized_fixed_frame(self, make_population):
        """Q-adaptation recovers from a bad initial Q: starting at Q=1 it
        should still use fewer slots than a fixed frame stuck at ℱ=16
        against 40 tags."""
        from repro.protocols.fsa import FramedSlottedAloha

        pop = make_population(40)
        adaptive_slots = len(run_q(pop, initial_q=1.0, c=0.5).trace)
        pop2 = make_population(40)
        fixed = Reader(QCDDetector(8)).run_inventory(
            pop2.tags, FramedSlottedAloha(16)
        )
        assert adaptive_slots < len(fixed.trace)
