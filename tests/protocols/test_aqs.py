"""Adaptive Query Splitting tests: warm-start rounds."""

from __future__ import annotations

from repro.bits.bitvec import BitVector
from repro.core.qcd import QCDDetector
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.sim.reader import Reader


class TestFirstRound:
    def test_all_identified(self, make_population):
        pop = make_population(40, id_bits=16)
        proto = AdaptiveQuerySplitting()
        result = Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_candidates_collected(self, make_population):
        pop = make_population(20, id_bits=16)
        proto = AdaptiveQuerySplitting()
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert len(proto.candidate_queue) >= 20  # >= one single per tag


class TestWarmStart:
    def test_second_round_collision_free(self, make_population):
        pop = make_population(30, id_bits=16)
        proto = AdaptiveQuerySplitting()
        reader = Reader(QCDDetector(8))
        reader.run_inventory(pop.tags, proto)
        for tag in pop:
            tag.identified = False
            tag.identified_at = None
        result2 = reader.run_inventory_continue(pop.tags, proto)
        assert result2.stats.true_counts.collided == 0
        assert result2.stats.true_counts.single == 30

    def test_warm_start_covers_new_arrival(self, make_population):
        """A tag arriving between rounds must still be identified: the idle
        candidate prefixes keep the whole ID space covered."""
        pop = make_population(12, id_bits=10)
        proto = AdaptiveQuerySplitting()
        reader = Reader(QCDDetector(8))
        reader.run_inventory(pop.tags, proto)
        for tag in pop:
            tag.identified = False
            tag.identified_at = None
        newcomer_pop = make_population(1, id_bits=10)
        newcomer = newcomer_pop[0]
        while newcomer.tag_id in set(pop.ids):  # pragma: no cover - unlikely
            newcomer_pop = make_population(1, id_bits=10)
            newcomer = newcomer_pop[0]
        result2 = reader.run_inventory_continue(
            list(pop.tags) + [newcomer], proto
        )
        assert newcomer.tag_id in result2.identified_ids
        assert len(result2.identified_ids) == 13

    def test_fresh_round_resets(self, make_population):
        pop = make_population(10, id_bits=12)
        proto = AdaptiveQuerySplitting()
        reader = Reader(QCDDetector(8))
        reader.run_inventory(pop.tags, proto)
        pop.reset()
        result = reader.run_inventory(pop.tags, proto)  # fresh=True
        assert result.stats.true_counts.single == 10


class TestCompaction:
    @staticmethod
    def compact(*pairs):
        cands = [(BitVector.from_bitstring(s), idle) for s, idle in pairs]
        return {
            p.to_bitstring()
            for p in AdaptiveQuerySplitting._compact(cands)
        }

    def test_idle_sibling_pairs_merge_recursively(self):
        # idle 000 + idle 001 -> idle 00; idle 00 + idle 01 -> idle 0.
        out = self.compact(("000", True), ("001", True), ("01", True), ("10", False))
        assert out == {"0", "10"}

    def test_single_prefixes_never_merge(self):
        """Merging a single with its sibling would re-create a collision."""
        out = self.compact(("00", False), ("01", False))
        assert out == {"00", "01"}

    def test_mixed_pair_kept_apart(self):
        out = self.compact(("00", True), ("01", False))
        assert out == {"00", "01"}

    def test_never_merges_to_empty_prefix(self):
        out = self.compact(("0", True), ("1", True))
        assert out == {"0", "1"}

    def test_lone_idle_kept(self):
        out = self.compact(("00", True), ("10", False))
        assert out == {"00", "10"}


class TestBounds:
    def test_max_slots(self, make_population):
        pop = make_population(30, id_bits=16)
        proto = AdaptiveQuerySplitting(max_slots=5)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert proto.aborted
