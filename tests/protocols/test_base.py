"""Base-protocol contract tests."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.base import AntiCollisionProtocol
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.tags.tag import Tag


class OneShot(AntiCollisionProtocol):
    """Minimal protocol: every active tag talks once, in ID order."""

    name = "one-shot"

    def __init__(self):
        super().__init__()
        self._queue = []

    def start(self, tags):
        super().start(tags)
        self._queue = sorted(self.active_tags(), key=lambda t: t.tag_id)

    def responders(self):
        return [self._queue[0]] if self._queue else []

    def feedback(self, effective, responders):
        self._note_slot()
        if self._queue:
            self._queue.pop(0)

    @property
    def finished(self):
        return not self._queue


def make_tag(v):
    return Tag(tag_id=v, id_bits=8, rng=make_rng(v))


class TestDefaults:
    def test_active_tags_excludes_identified(self):
        proto = OneShot()
        tags = [make_tag(1), make_tag(2)]
        proto.start(tags)
        tags[0].identified = True
        assert proto.active_tags() == [tags[1]]

    def test_admit_and_withdraw(self):
        proto = OneShot()
        proto.start([make_tag(1)])
        extra = make_tag(2)
        proto.admit(extra)
        assert extra in proto.tags
        proto.withdraw(extra)
        assert extra not in proto.tags

    def test_withdraw_absent_tag_is_noop(self):
        proto = OneShot()
        proto.start([])
        proto.withdraw(make_tag(9))  # must not raise

    def test_slot_counter(self):
        proto = OneShot()
        proto.start([make_tag(1), make_tag(2)])
        reader = Reader(QCDDetector(8))
        reader.run_inventory([make_tag(1), make_tag(2)], proto)
        assert proto.slots_elapsed == 2

    def test_custom_protocol_through_reader(self):
        pop = TagPopulation(10, id_bits=8, rng=make_rng(3))
        result = Reader(QCDDetector(8)).run_inventory(pop.tags, OneShot())
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert all(r.true_type is SlotType.SINGLE for r in result.trace)


class TestReadableRoundErrors:
    def test_continue_on_memoryless_protocol_is_a_clear_error(self):
        from repro.protocols.bt import BinaryTree

        pop = TagPopulation(5, id_bits=8, rng=make_rng(4))
        reader = Reader(QCDDetector(8))
        with pytest.raises(ValueError, match="readable rounds"):
            reader.run_inventory_continue(pop.tags, BinaryTree())
