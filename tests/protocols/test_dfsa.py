"""Dynamic FSA tests: adaptation behaviour and estimator plumbing."""

from __future__ import annotations

import pytest

from repro.core.qcd import QCDDetector
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.estimators import LowerBoundEstimator, VogtEstimator
from repro.sim.reader import Reader


def run_dfsa(pop, **kw):
    return Reader(QCDDetector(8)).run_inventory(pop.tags, DynamicFSA(**kw))


class TestCorrectness:
    def test_all_identified(self, make_population):
        pop = make_population(80)
        result = run_dfsa(pop, initial_frame_size=16)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    @pytest.mark.parametrize(
        "estimator", [None, LowerBoundEstimator(), VogtEstimator()]
    )
    def test_estimators_all_complete(self, make_population, estimator):
        pop = make_population(60)
        result = run_dfsa(pop, initial_frame_size=8, estimator=estimator)
        assert result.stats.true_counts.single == 60


class TestAdaptation:
    def test_frame_grows_under_collisions(self, make_population):
        """Starting with a tiny frame against a big population must scale
        the frame up."""
        pop = make_population(200)
        proto = DynamicFSA(initial_frame_size=4)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert any(size > 4 for size, _ in proto.adaptation_history)

    def test_adaptation_history_recorded(self, make_population):
        pop = make_population(50)
        proto = DynamicFSA(initial_frame_size=8)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert len(proto.adaptation_history) >= 1

    def test_clamping(self, make_population):
        pop = make_population(100)
        proto = DynamicFSA(initial_frame_size=8, max_frame_size=16)
        Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert all(size <= 16 for size, _ in proto.adaptation_history)

    def test_beats_badly_sized_fixed_frame(self, make_population):
        """DFSA's raison d'être: adaptive sizing needs fewer slots than a
        fixed frame 4x too small (kept moderate -- a grossly undersized
        fixed frame takes astronomically long, see test_fsa)."""
        from repro.protocols.fsa import FramedSlottedAloha

        pop = make_population(100)
        slots_dfsa = len(run_dfsa(pop, initial_frame_size=25).trace)
        pop2 = make_population(100)
        fixed = Reader(QCDDetector(8)).run_inventory(
            pop2.tags, FramedSlottedAloha(25)
        )
        assert slots_dfsa < len(fixed.trace)


class TestValidation:
    def test_bad_initial_frame(self):
        with pytest.raises(ValueError):
            DynamicFSA(initial_frame_size=0)

    def test_bad_clamps(self):
        with pytest.raises(ValueError):
            DynamicFSA(min_frame_size=10, max_frame_size=5)

    def test_name_includes_estimator(self):
        assert "schoute" in DynamicFSA().name

    def test_empty_population(self):
        proto = DynamicFSA()
        proto.start([])
        assert proto.finished
