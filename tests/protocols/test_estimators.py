"""Cardinality estimator tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.protocols.estimators import (
    FrameObservation,
    LowerBoundEstimator,
    SchouteEstimator,
    VogtEstimator,
    expected_slot_counts,
)


def obs(frame_size, idle, single, collided):
    return FrameObservation(frame_size, idle, single, collided)


class TestObservation:
    def test_counts_must_sum(self):
        with pytest.raises(ValueError, match="must equal frame_size"):
            obs(10, 3, 3, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            obs(10, -1, 5, 6)


class TestExpectedCounts:
    def test_sum_to_frame(self):
        e0, e1, ec = expected_slot_counts(100, 64)
        assert e0 + e1 + ec == pytest.approx(64)

    def test_zero_tags(self):
        e0, e1, ec = expected_slot_counts(0, 10)
        assert (e0, e1, ec) == (10.0, 0.0, 0.0)

    def test_one_tag(self):
        e0, e1, ec = expected_slot_counts(1, 10)
        assert e1 == pytest.approx(1.0)
        assert ec == pytest.approx(0.0)

    def test_frame_of_one(self):
        assert expected_slot_counts(0, 1) == (1.0, 0.0, 0.0)
        assert expected_slot_counts(1, 1) == (0.0, 1.0, 0.0)
        e0, e1, ec = expected_slot_counts(5, 1)
        assert ec == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_slot_counts(-1, 10)
        with pytest.raises(ValueError):
            expected_slot_counts(5, 0)

    @given(st.integers(0, 500), st.integers(1, 200))
    def test_counts_nonnegative(self, n, frame):
        e0, e1, ec = expected_slot_counts(n, frame)
        assert e0 >= 0 and e1 >= 0 and ec >= -1e-9


class TestLowerBound:
    def test_formula(self):
        est = LowerBoundEstimator()
        assert est.estimate(obs(10, 4, 3, 3)) == 3 + 6

    def test_backlog_subtracts_singles(self):
        est = LowerBoundEstimator()
        assert est.backlog(obs(10, 4, 3, 3)) == 6

    def test_no_collisions_zero_backlog(self):
        est = LowerBoundEstimator()
        assert est.backlog(obs(10, 7, 3, 0)) == 0


class TestSchoute:
    def test_coefficient_value(self):
        # E[X | X>=2] for Poisson(1) = (2 - 3/e)/(1 - 2/e) ≈ 2.392
        assert SchouteEstimator.COEFFICIENT == pytest.approx(2.392, abs=0.01)

    def test_estimate_exceeds_lower_bound(self):
        o = obs(10, 2, 3, 5)
        assert SchouteEstimator().estimate(o) > LowerBoundEstimator().estimate(o)


class TestVogt:
    def test_recovers_known_n(self):
        """Feed Vogt the *expected* counts for a known n: it should return
        approximately n."""
        n, frame = 80, 64
        e0, e1, ec = expected_slot_counts(n, frame)
        o = obs(frame, round(e0), round(e1), frame - round(e0) - round(e1))
        est = VogtEstimator().estimate(o)
        assert abs(est - n) < 0.2 * n

    def test_zero_activity(self):
        assert VogtEstimator().estimate(obs(10, 10, 0, 0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VogtEstimator(max_factor=0.5)

    def test_at_least_lower_bound(self):
        o = obs(16, 2, 4, 10)
        assert VogtEstimator().estimate(o) >= 4 + 2 * 10


class TestAccuracyOrdering:
    def test_schoute_beats_lower_bound_at_operating_point(self):
        """At ℱ ≈ n (Poisson(1) occupancy) the Schoute correction is the
        right unbiasing: its estimate is closer to the truth."""
        n, frame = 100, 100
        e0, e1, _ = expected_slot_counts(n, frame)
        o = obs(frame, round(e0), round(e1), frame - round(e0) - round(e1))
        lb = LowerBoundEstimator().estimate(o)
        sch = SchouteEstimator().estimate(o)
        assert abs(sch - n) < abs(lb - n)
        assert math.isfinite(sch)
