"""Binary-tree protocol tests: counter automaton invariants and Lemma 2."""

from __future__ import annotations

import statistics

from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.bt import BinaryTree
from repro.sim.reader import Reader


def run_bt(pop, detector=None):
    return Reader(detector or QCDDetector(8)).run_inventory(pop.tags, BinaryTree())


class TestInvariants:
    def test_all_identified_exactly_once(self, make_population):
        pop = make_population(64)
        result = run_bt(pop)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_first_slot_all_respond(self, make_population):
        pop = make_population(10)
        proto = BinaryTree()
        proto.start(pop.tags)
        assert len(proto.responders()) == 10

    def test_counters_never_negative(self, make_population):
        pop = make_population(30)
        proto = BinaryTree()
        reader = Reader(QCDDetector(8))
        proto.start(pop.tags)
        while not proto.finished:
            responders = proto.responders()
            time, record = reader._run_slot(0, 0.0, proto, responders, [], [])
            proto.feedback(record.true_type, responders)
            assert all(t.counter >= 0 for t in proto.active_tags())

    def test_single_tag_one_slot(self, make_population):
        pop = make_population(1)
        result = run_bt(pop)
        assert len(result.trace) == 1
        assert result.trace[0].true_type is SlotType.SINGLE

    def test_empty_population(self):
        proto = BinaryTree()
        proto.start([])
        assert proto.finished

    def test_two_tags_split_until_resolved(self, make_population):
        pop = make_population(2)
        result = run_bt(pop)
        assert result.stats.true_counts.single == 2
        assert result.trace[0].true_type is SlotType.COLLIDED


class TestLemma2Shape:
    def test_slot_count_near_2885n(self, make_population):
        """Lemma 2: E[slots] = 2.885n; 20 runs of n=50 should average close."""
        totals = []
        for _ in range(20):
            pop = make_population(50)
            totals.append(run_bt(pop).stats.true_counts.total)
        avg = statistics.mean(totals)
        assert 2.885 * 50 * 0.85 < avg < 2.885 * 50 * 1.15

    def test_throughput_near_035(self, make_population):
        thr = []
        for _ in range(20):
            pop = make_population(50)
            thr.append(run_bt(pop).stats.throughput)
        assert 0.30 < statistics.mean(thr) < 0.40

    def test_collided_exceed_idle(self, make_population):
        """Lemma 2: 1.443n collided vs 0.442n idle."""
        pop = make_population(200)
        counts = run_bt(pop).stats.true_counts
        assert counts.collided > counts.idle


class TestProgress:
    def test_slot_count_bounded(self, make_population):
        """BT resolves n tags in O(n) expected slots; even unlucky runs
        stay well under 10n."""
        pop = make_population(40)
        result = run_bt(pop)
        assert len(result.trace) < 400

    def test_frames_reported_as_one(self, make_population):
        pop = make_population(10)
        assert run_bt(pop).stats.frames == 1
