"""Adaptive Binary Splitting tests: round memory and collision-free replay."""

from __future__ import annotations

from repro.core.qcd import QCDDetector
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.sim.reader import Reader


class TestFirstRound:
    def test_all_identified(self, make_population):
        pop = make_population(50)
        proto = AdaptiveBinarySplitting()
        result = Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_single_tag(self, make_population):
        pop = make_population(1)
        proto = AdaptiveBinarySplitting()
        result = Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
        assert len(result.trace) == 1

    def test_empty(self):
        proto = AdaptiveBinarySplitting()
        proto.start([])
        assert proto.finished


class TestReadableRound:
    """ABS's defining feature: a second round over the same tags replays
    the learned schedule collision-free, one slot per tag."""

    def test_second_round_collision_free(self, make_population):
        pop = make_population(40)
        proto = AdaptiveBinarySplitting()
        reader = Reader(QCDDetector(8))
        reader.run_inventory(pop.tags, proto)
        # Tags retain their ASCs; reset identification only.
        for tag in pop:
            tag.identified = False
            tag.identified_at = None
        result2 = reader.run_inventory_continue(pop.tags, proto)
        counts = result2.stats.true_counts
        assert counts.collided == 0
        assert counts.single == 40

    def test_second_round_slot_count_equals_n(self, make_population):
        pop = make_population(25)
        proto = AdaptiveBinarySplitting()
        reader = Reader(QCDDetector(8))
        reader.run_inventory(pop.tags, proto)
        for tag in pop:
            tag.identified = False
            tag.identified_at = None
        result2 = reader.run_inventory_continue(pop.tags, proto)
        assert len(result2.trace) == 25


class TestArrivals:
    def test_admitted_tag_identified(self, make_population):
        pop = make_population(10)
        proto = AdaptiveBinarySplitting()
        reader = Reader(QCDDetector(8))
        proto.start(pop.tags)
        extra_pop = make_population(1)
        extra = extra_pop[0]
        # Run a few slots, then admit a newcomer.
        identified, lost = [], []
        index, time = 0, 0.0
        from repro.sim.reader import record_effective

        while not proto.finished:
            if index == 3:
                proto.admit(extra)
            responders = proto.responders()
            time, record = reader._run_slot(
                index, time, proto, responders, identified, lost
            )
            proto.feedback(record_effective(record, "paper"), responders)
            index += 1
        assert extra.tag_id in identified
        assert len(identified) == 11
