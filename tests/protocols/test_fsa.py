"""Fixed-frame FSA tests: invariants, termination policies, Table VII shape."""

from __future__ import annotations

import pytest

from repro.core.qcd import QCDDetector
from repro.protocols.fsa import TERMINATIONS, FramedSlottedAloha
from repro.sim.reader import Reader


def run_fsa(pop, frame_size, termination="confirm", detector=None):
    reader = Reader(detector or QCDDetector(8))
    return reader.run_inventory(
        pop.tags, FramedSlottedAloha(frame_size, termination=termination)
    )


class TestInvariants:
    def test_all_tags_identified_exactly_once(self, make_population):
        pop = make_population(60)
        result = run_fsa(pop, 32)
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert len(result.identified_ids) == len(set(result.identified_ids))

    def test_slot_accounting(self, make_population):
        pop = make_population(40)
        result = run_fsa(pop, 32)
        counts = result.stats.true_counts
        assert counts.single == 40
        assert counts.total == len(result.trace)

    def test_singles_equal_population(self, make_population):
        for n in (1, 5, 25):
            pop = make_population(n)
            assert run_fsa(pop, 16).stats.true_counts.single == n

    def test_frame_structure(self, make_population):
        """Slot count is a whole number of frames for every termination
        except 'immediate'."""
        pop = make_population(30)
        result = run_fsa(pop, 16)
        assert len(result.trace) % 16 == 0

    def test_tags_respond_once_per_frame(self, make_population):
        """Total responders across a frame equals the frame's backlog."""
        pop = make_population(20)
        result = run_fsa(pop, 10, termination="frame")
        frame_resp = {}
        for rec in result.trace:
            frame_resp[rec.frame] = frame_resp.get(rec.frame, 0) + rec.n_responders
        # Frame 1 sees all 20 responders.
        assert frame_resp[1] == 20


class TestTermination:
    def test_confirm_ends_with_idle_frame(self, make_population):
        pop = make_population(30)
        result = run_fsa(pop, 16, termination="confirm")
        assert all(
            r.n_responders == 0 for r in result.trace[-16:]
        ), "last frame must be all idle"

    def test_frame_vs_confirm_differ_by_one_frame(self):
        """With identical randomness (same population seed), 'confirm'
        costs exactly one extra all-idle frame over 'frame'."""
        from repro.bits.rng import make_rng
        from repro.tags.population import TagPopulation

        pop_a = TagPopulation(30, rng=make_rng(777))
        r_confirm = run_fsa(pop_a, 16, termination="confirm")
        pop_b = TagPopulation(30, rng=make_rng(777))
        r_frame = run_fsa(pop_b, 16, termination="frame")
        assert len(r_confirm.trace) == len(r_frame.trace) + 16
        assert r_confirm.stats.true_counts.idle == (
            r_frame.stats.true_counts.idle + 16
        )

    def test_immediate_ends_on_single(self, make_population):
        pop = make_population(30)
        result = run_fsa(pop, 16, termination="immediate")
        assert result.trace[-1].identified_tag is not None

    def test_invalid_termination(self):
        with pytest.raises(ValueError, match="termination"):
            FramedSlottedAloha(10, termination="sometime")

    @pytest.mark.parametrize("termination", TERMINATIONS)
    def test_all_policies_complete(self, make_population, termination):
        pop = make_population(25)
        result = run_fsa(pop, 16, termination=termination)
        assert result.stats.true_counts.single == 25

    def test_empty_population_confirm(self):
        proto = FramedSlottedAloha(8, termination="confirm")
        proto.start([])
        slots = 0
        from repro.core.detector import SlotType

        while not proto.finished:
            assert proto.responders() == []
            proto.feedback(SlotType.IDLE, [])
            slots += 1
        assert slots == 8  # exactly one confirmation frame

    def test_empty_population_frame(self):
        proto = FramedSlottedAloha(8, termination="frame")
        proto.start([])
        assert proto.finished


class TestValidation:
    def test_bad_frame_size(self):
        with pytest.raises(ValueError):
            FramedSlottedAloha(0)

    def test_name(self):
        assert FramedSlottedAloha(30).name == "FSA(F=30)"


class TestPaperShape:
    def test_case1_throughput_band(self, make_population):
        """Case I (50 tags, F=30): paper reports λ = 0.25."""
        import statistics

        thr = []
        for _ in range(10):
            pop = make_population(50)
            thr.append(run_fsa(pop, 30).stats.throughput)
        assert 0.20 <= statistics.mean(thr) <= 0.30

    def test_undersized_frame_hurts_throughput(self, make_population):
        """ℱ below n wastes slots on collisions (Lemma 1 shape).

        The mismatch is kept moderate (n/ℱ ≈ 3.75): with n/ℱ >> ln(n) the
        expected singles per frame drop below one and fixed-frame FSA takes
        astronomically long -- itself a behaviour worth knowing about.
        """
        pop_small = make_population(30)
        thr_small_frame = run_fsa(pop_small, 8).stats.throughput
        pop_right = make_population(30)
        thr_right_frame = run_fsa(pop_right, 30).stats.throughput
        assert thr_right_frame > thr_small_frame
