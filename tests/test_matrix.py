"""Cross-product integration matrix: every protocol × every detector ×
every policy must complete (or account for its losses) on the same
population, with consistent slot accounting.

This is the library's composability contract: detectors, protocols,
timing models and policies are orthogonal axes.
"""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.core.gen2_timing import Gen2TimingModel
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.qadaptive import QAdaptive
from repro.protocols.qt import QueryTree
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 25

PROTOCOLS = {
    "fsa": lambda: FramedSlottedAloha(16),
    "dfsa": lambda: DynamicFSA(8),
    "qadaptive": lambda: QAdaptive(initial_q=3.0),
    "bt": BinaryTree,
    "qt": QueryTree,
    "abs": AdaptiveBinarySplitting,
    "aqs": AdaptiveQuerySplitting,
}

DETECTORS = {
    "qcd8": lambda: QCDDetector(8),
    "crc": lambda: CRCCDDetector(id_bits=64),
    "ideal": lambda: IdealDetector(64),
}


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
@pytest.mark.parametrize("detector_name", DETECTORS)
class TestEveryCombination:
    def test_paper_policy_completes(self, protocol_name, detector_name):
        pop = TagPopulation(N, id_bits=64, rng=make_rng(17))
        reader = Reader(DETECTORS[detector_name]())
        result = reader.run_inventory(pop.tags, PROTOCOLS[protocol_name]())
        assert sorted(result.identified_ids) == sorted(pop.ids)
        counts = result.stats.true_counts
        assert counts.single == N
        assert counts.total == len(result.trace)
        assert result.stats.total_time == pytest.approx(
            sum(r.duration for r in result.trace)
        )

    def test_crc_guard_policy_completes(self, protocol_name, detector_name):
        pop = TagPopulation(N, id_bits=64, rng=make_rng(18))
        timing = TimingModel(guard_id_phase=True)
        reader = Reader(DETECTORS[detector_name](), timing, policy="crc_guard")
        result = reader.run_inventory(pop.tags, PROTOCOLS[protocol_name]())
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_lost_policy_accounts_for_every_tag(
        self, protocol_name, detector_name
    ):
        pop = TagPopulation(N, id_bits=64, rng=make_rng(19))
        reader = Reader(DETECTORS[detector_name](), policy="lost")
        result = reader.run_inventory(pop.tags, PROTOCOLS[protocol_name]())
        accounted = set(result.identified_ids) | set(result.lost_ids)
        assert accounted == set(pop.ids)
        assert set(result.lost_ids).isdisjoint(result.identified_ids)

    def test_gen2_timing_completes(self, protocol_name, detector_name):
        pop = TagPopulation(N, id_bits=64, rng=make_rng(20))
        reader = Reader(DETECTORS[detector_name](), Gen2TimingModel())
        result = reader.run_inventory(pop.tags, PROTOCOLS[protocol_name]())
        assert len(result.identified_ids) == N
        assert result.stats.total_time > 0
