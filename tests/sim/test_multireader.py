"""Multi-reader sweep tests."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.crc_cd import CRCCDDetector
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.deployment import Deployment
from repro.sim.multireader import run_multireader_inventory
from repro.sim.reader import Reader


def sweep(deployment, detector_factory=None, frame=16):
    from repro.core.timing import TimingModel

    timing = TimingModel(id_bits=96)  # deployment tags carry 96-bit EPCs
    return run_multireader_inventory(
        deployment,
        reader_factory=lambda rid: Reader(
            (detector_factory or (lambda: QCDDetector(8)))(), timing
        ),
        protocol_factory=lambda rid: FramedSlottedAloha(frame),
    )


class TestSweep:
    def test_covered_tags_all_identified(self):
        dep = Deployment.table5(
            300, make_rng(10), n_readers=25, reader_range=12.0
        )
        result = sweep(dep)
        assert result.identified == result.covered
        assert result.identification_rate == 1.0

    def test_uncovered_tags_left_alone(self):
        dep = Deployment.table5(300, make_rng(11))  # sparse Table V geometry
        result = sweep(dep)
        assert result.covered < result.population
        unidentified = [t for t in dep.population if not t.identified]
        assert len(unidentified) == result.population - result.covered

    def test_overlap_tags_identified_once(self):
        dep = Deployment.table5(
            400, make_rng(12), n_readers=16, reader_range=20.0
        )
        result = sweep(dep)
        ids = [
            i
            for res in result.per_reader.values()
            for i in res.identified_ids
        ]
        assert len(ids) == len(set(ids))

    def test_makespan_is_sum_of_round_maxima(self):
        dep = Deployment.table5(
            300, make_rng(13), n_readers=25, reader_range=12.0
        )
        result = sweep(dep)
        expected = 0.0
        for rnd in result.rounds:
            expected += max(
                (
                    result.per_reader[rid].stats.total_time
                    for rid in rnd
                    if rid in result.per_reader
                ),
                default=0.0,
            )
        assert result.makespan == pytest.approx(expected)

    def test_qcd_sweep_faster_than_crc(self):
        dep1 = Deployment.table5(400, make_rng(14), n_readers=25, reader_range=12.0)
        t_qcd = sweep(dep1).makespan
        dep2 = Deployment.table5(400, make_rng(14), n_readers=25, reader_range=12.0)
        t_crc = sweep(dep2, detector_factory=lambda: CRCCDDetector(id_bits=96)).makespan
        assert t_qcd < t_crc

    def test_coverage_property(self):
        dep = Deployment.table5(100, make_rng(15))
        result = sweep(dep)
        assert 0.0 <= result.coverage <= 1.0
        assert result.total_slots >= result.identified


class TestUnscheduled:
    """Turning the schedule off constructs the reader-collision failure
    the paper assumes away."""

    @staticmethod
    def unscheduled_sweep(dep):
        from repro.core.timing import TimingModel

        timing = TimingModel(id_bits=96)
        return run_multireader_inventory(
            dep,
            reader_factory=lambda rid: Reader(QCDDetector(8), timing),
            protocol_factory=lambda rid: FramedSlottedAloha(16),
            scheduled=False,
        )

    def test_overlap_tags_jammed(self):
        dep = Deployment.table5(400, make_rng(16), n_readers=16, reader_range=20.0)
        result = self.unscheduled_sweep(dep)
        assert result.jammed > 0
        assert result.identified == result.covered - result.jammed
        assert result.identification_rate < 1.0

    def test_scheduled_recovers_everyone(self):
        dep = Deployment.table5(400, make_rng(16), n_readers=16, reader_range=20.0)
        result = sweep(dep)
        assert result.jammed == 0
        assert result.identified == result.covered

    def test_single_round_when_unscheduled(self):
        dep = Deployment.table5(50, make_rng(17), n_readers=9, reader_range=20.0)
        result = self.unscheduled_sweep(dep)
        assert len(result.rounds) == 1

    def test_no_jamming_without_overlap(self):
        """Sparse Table V geometry: disjoint disks, unscheduled is safe."""
        dep = Deployment.table5(200, make_rng(18))  # 3 m range, no overlap
        result = self.unscheduled_sweep(dep)
        assert result.jammed == 0
        assert result.identified == result.covered
