"""Trace/stats export tests."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.bits.rng import make_rng
from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.export import (
    nan_to_none,
    read_trace_csv,
    read_trace_json,
    stats_to_dict,
    trace_to_rows,
    write_stats_json,
    write_trace_csv,
    write_trace_json,
)
from repro.sim.reader import Reader
from repro.sim.trace import SlotRecord
from repro.tags.population import TagPopulation


def run_small(seed=1):
    pop = TagPopulation(10, id_bits=64, rng=make_rng(seed))
    return Reader(QCDDetector(8)).run_inventory(pop.tags, FramedSlottedAloha(8))


class TestRows:
    def test_trace_rows(self):
        result = run_small()
        rows = trace_to_rows(result.trace)
        assert len(rows) == len(result.trace)
        assert rows[0]["true_type"] in ("IDLE", "SINGLE", "COLLIDED")
        assert set(rows[0]) >= {
            "index",
            "frame",
            "duration",
            "end_time",
            "identified_tag",
            "captured",
        }

    def test_stats_dict_roundtrips_json(self):
        result = run_small()
        d = stats_to_dict(result.stats)
        encoded = json.dumps(d)
        decoded = json.loads(encoded)
        assert decoded["single"] == 10
        assert decoded["throughput"] == result.stats.throughput

    def test_stats_dict_is_loss_free(self):
        d = stats_to_dict(run_small().stats)
        assert d["utilization_rate"] == d["utilization"]
        assert "lost_tags" in d and "captures" in d


class TestFiles:
    def test_write_csv(self, tmp_path):
        result = run_small()
        path = write_trace_csv(result.trace, tmp_path / "trace.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(result.trace)
        assert rows[0]["true_type"] in ("IDLE", "SINGLE", "COLLIDED")

    def test_write_csv_empty_trace(self, tmp_path):
        path = write_trace_csv([], tmp_path / "empty.csv")
        with path.open() as fh:
            reader = csv.reader(fh)
            header = next(reader)
        assert "true_type" in header

    def test_write_json_empty_trace(self, tmp_path):
        path = write_trace_json([], tmp_path / "empty.json")
        assert json.loads(path.read_text()) == []

    def test_write_json_single_and_list(self, tmp_path):
        result = run_small()
        p1 = write_stats_json(result.stats, tmp_path / "one.json")
        assert json.loads(p1.read_text())["single"] == 10
        p2 = write_stats_json(
            [result.stats, result.stats], tmp_path / "two.json"
        )
        assert len(json.loads(p2.read_text())) == 2


class TestRoundTrip:
    """trace -> file -> parsed rows must equal trace_to_rows exactly."""

    def test_csv_roundtrip(self, tmp_path):
        result = run_small()
        path = write_trace_csv(result.trace, tmp_path / "trace.csv")
        assert read_trace_csv(path) == trace_to_rows(result.trace)

    def test_json_roundtrip(self, tmp_path):
        result = run_small()
        path = write_trace_json(result.trace, tmp_path / "trace.json")
        assert read_trace_json(path) == trace_to_rows(result.trace)

    def test_csv_roundtrip_lost_policy(self, tmp_path):
        """Covers lost_tags > 0 and identified_tag=None columns."""
        pop = TagPopulation(40, id_bits=64, rng=make_rng(5))
        result = Reader(QCDDetector(2), policy="lost").run_inventory(
            pop.tags, FramedSlottedAloha(8)
        )
        path = write_trace_csv(result.trace, tmp_path / "trace.csv")
        assert read_trace_csv(path) == trace_to_rows(result.trace)

    def test_csv_roundtrip_empty(self, tmp_path):
        path = write_trace_csv([], tmp_path / "empty.csv")
        assert read_trace_csv(path) == []


def _nan_record() -> SlotRecord:
    return SlotRecord(
        index=0,
        frame=1,
        n_responders=0,
        true_type=SlotType.IDLE,
        detected_type=SlotType.IDLE,
        duration=math.nan,
        end_time=math.nan,
        identified_tag=None,
        lost_tags=0,
        captured=False,
    )


class TestStrictJson:
    """Writers must emit RFC 8259 JSON: no bare ``NaN`` literals."""

    def test_nan_to_none_helper(self):
        doc = {"a": math.nan, "b": [1.0, math.nan], "c": {"d": math.nan}}
        assert nan_to_none(doc) == {"a": None, "b": [1.0, None], "c": {"d": None}}
        assert nan_to_none(2.5) == 2.5
        assert nan_to_none("NaN") == "NaN"

    def test_trace_json_has_no_nan_literal(self, tmp_path):
        path = write_trace_json([_nan_record()], tmp_path / "t.json")
        text = path.read_text()
        # Strict parse: parse_constant fires on NaN/Infinity literals.
        rows = json.loads(text, parse_constant=pytest.fail)
        assert rows[0]["duration"] is None

    def test_trace_json_roundtrip_restores_nan(self, tmp_path):
        trace = [_nan_record()]
        path = write_trace_json(trace, tmp_path / "t.json")
        (row,) = read_trace_json(path)
        want = trace_to_rows(trace)[0]
        assert math.isnan(row.pop("duration"))
        assert math.isnan(row.pop("end_time"))
        want.pop("duration"), want.pop("end_time")
        assert row == want  # every non-NaN field is loss-free

    def test_identified_tag_none_is_not_coerced(self, tmp_path):
        path = write_trace_json([_nan_record()], tmp_path / "t.json")
        (row,) = read_trace_json(path)
        assert row["identified_tag"] is None

    def test_stats_json_nan_delay_is_null(self, tmp_path):
        import numpy as np

        from repro.core.timing import TimingModel
        from repro.sim.fast import fsa_fast

        # A 0-tag inventory identifies nothing, so its delay stats are NaN.
        stats = fsa_fast(
            0,
            8,
            QCDDetector(8),
            TimingModel(),
            np.random.Generator(np.random.PCG64(1)),
        )
        path = write_stats_json(stats, tmp_path / "s.json")
        doc = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert doc["delay_mean"] is None
        assert doc["delay_std"] is None
        assert doc["idle"] == 8

    def test_stats_json_normal_run_still_strict(self, tmp_path):
        result = run_small()
        path = write_stats_json(result.stats, tmp_path / "s.json")
        doc = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert doc["single"] == 10
