"""Metrics tests: slot counts, throughput, UR, accuracy, delay, EI."""

from __future__ import annotations

import math

import pytest

from repro.core.detector import SlotType
from repro.sim.metrics import (
    DelayStats,
    InventoryStats,
    SlotCounts,
    delay_stats,
    detection_accuracy,
    efficiency_improvement,
    slot_counts,
    utilization_rate,
)
from repro.sim.trace import SlotRecord


def rec(
    i,
    true_type,
    detected=None,
    duration=10.0,
    end=None,
    tag=None,
    n=None,
):
    if detected is None:
        detected = true_type
    if n is None:
        n = {SlotType.IDLE: 0, SlotType.SINGLE: 1, SlotType.COLLIDED: 2}[true_type]
    return SlotRecord(
        index=i,
        frame=1,
        n_responders=n,
        true_type=true_type,
        detected_type=detected,
        duration=duration,
        end_time=end if end is not None else (i + 1) * duration,
        identified_tag=tag,
    )


TRACE = [
    rec(0, SlotType.COLLIDED),
    rec(1, SlotType.SINGLE, tag=7),
    rec(2, SlotType.IDLE),
    rec(3, SlotType.SINGLE, tag=9),
    rec(4, SlotType.COLLIDED, detected=SlotType.SINGLE),  # missed
]


class TestSlotCounts:
    def test_true_counts(self):
        counts = slot_counts(TRACE)
        assert (counts.idle, counts.single, counts.collided) == (1, 2, 2)

    def test_detected_counts(self):
        counts = slot_counts(TRACE, detected=True)
        assert (counts.idle, counts.single, counts.collided) == (1, 3, 1)

    def test_throughput(self):
        assert SlotCounts(1, 2, 2).throughput == pytest.approx(0.4)

    def test_empty_throughput(self):
        assert SlotCounts(0, 0, 0).throughput == 0.0


class TestAccuracy:
    def test_partial(self):
        assert detection_accuracy(TRACE) == pytest.approx(0.5)

    def test_perfect_when_no_collisions(self):
        assert detection_accuracy([rec(0, SlotType.IDLE)]) == 1.0

    def test_all_caught(self):
        assert detection_accuracy([rec(0, SlotType.COLLIDED)]) == 1.0


class TestDelay:
    def test_delays_from_identified_slots(self):
        stats = delay_stats(TRACE)
        assert stats.count == 2
        assert stats.mean == pytest.approx((20.0 + 40.0) / 2)
        assert stats.minimum == 20.0
        assert stats.maximum == 40.0

    def test_empty(self):
        stats = DelayStats.from_delays([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_median_odd_even(self):
        assert DelayStats.from_delays([1, 2, 3]).median == 2
        assert DelayStats.from_delays([1, 2, 3, 4]).median == 2.5

    def test_std(self):
        s = DelayStats.from_delays([2.0, 4.0])
        assert s.std == pytest.approx(1.0)


class TestUtilization:
    def test_formula(self):
        # 2 singles x 64 bits / 50 total airtime units
        ur = utilization_rate(TRACE, id_bits=64, tau=1.0)
        assert ur == pytest.approx(2 * 64 / 50.0)

    def test_zero_time(self):
        assert utilization_rate([], 64) == 0.0


class TestEI:
    def test_formula(self):
        assert efficiency_improvement(100.0, 40.0) == pytest.approx(0.6)

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            efficiency_improvement(0.0, 1.0)

    def test_negative_improvement_allowed(self):
        assert efficiency_improvement(10.0, 12.0) == pytest.approx(-0.2)


class TestInventoryStats:
    def test_from_trace(self):
        stats = InventoryStats.from_trace(TRACE, n_tags=2, frames=1, id_bits=64)
        assert stats.throughput == pytest.approx(0.4)
        assert stats.missed_collisions == 1
        assert stats.false_collisions == 0
        assert stats.accuracy == pytest.approx(0.5)
        assert stats.total_time == pytest.approx(50.0)
        assert stats.lost_tags == 0

    def test_false_collision_counted(self):
        trace = [rec(0, SlotType.SINGLE, detected=SlotType.COLLIDED, tag=None)]
        stats = InventoryStats.from_trace(trace, 1, 1, 64)
        assert stats.false_collisions == 1
