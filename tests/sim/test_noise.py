"""Detector robustness under channel bit errors.

The paper's channel is noiseless.  Under independent bit flips, a false
*collision* (a clean single misread as collided) costs a retry; the
per-slot corruption probability scales with the bits exposed, so QCD's
16-bit preamble is hit ~6x less often than CRC-CD's 96-bit payload.
"""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.channel import Channel
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation


def run_noisy(detector, ber, n=60, seed=23):
    pop = TagPopulation(n, id_bits=64, rng=make_rng(seed))
    channel = Channel(bit_error_rate=ber, rng=make_rng(seed + 1))
    reader = Reader(detector, channel=channel)
    result = reader.run_inventory(pop.tags, FramedSlottedAloha(36))
    return result


class TestSingleSlotCorruption:
    def test_qcd_flip_makes_false_collision(self):
        det = QCDDetector(8)
        signal = det.codec.encode(BitVector(0x5A, 8))
        corrupted = signal ^ BitVector(1, 16)
        assert det.classify(corrupted).slot_type is SlotType.COLLIDED

    def test_crc_flip_makes_false_collision(self, rng):
        det = CRCCDDetector(id_bits=64)
        signal = det.contention_payload(0x1234, rng)
        corrupted = signal ^ BitVector(1 << 50, 96)
        assert det.classify(corrupted).slot_type is SlotType.COLLIDED

    def test_qcd_symmetric_flips_can_slip_through(self):
        """QCD's check is bitwise: flipping bit k of r *and* bit k of c
        keeps consistency -- a 2-bit blind spot CRC does not have.  Worth
        knowing; at independent-flip rates its probability is O(ber²)."""
        det = QCDDetector(8)
        signal = det.codec.encode(BitVector(0x5A, 8))
        both = signal ^ (BitVector(1 << 15, 16) | BitVector(1 << 7, 16))
        assert det.classify(both).slot_type is SlotType.SINGLE


class TestInventoryUnderNoise:
    @pytest.mark.parametrize("detector_factory", [
        lambda: QCDDetector(8),
        lambda: CRCCDDetector(id_bits=64),
    ])
    def test_completes_under_mild_noise(self, detector_factory):
        result = run_noisy(detector_factory(), ber=1e-3)
        assert result.stats.true_counts.single >= 60  # retries included

    def test_false_collisions_counted(self):
        result = run_noisy(QCDDetector(8), ber=5e-3)
        assert result.stats.false_collisions >= 0  # metric plumbed

    def test_qcd_suffers_fewer_false_collisions(self):
        """6x less exposure per slot -> fewer noise-induced retries."""
        totals = {"qcd": 0, "crc": 0}
        for seed in (31, 37, 41):
            totals["qcd"] += run_noisy(
                QCDDetector(8), ber=3e-3, seed=seed
            ).stats.false_collisions
            totals["crc"] += run_noisy(
                CRCCDDetector(id_bits=64), ber=3e-3, seed=seed
            ).stats.false_collisions
        assert totals["qcd"] < totals["crc"]

    def test_noise_increases_slots(self):
        clean = run_noisy(QCDDetector(8), ber=0.0, seed=51)
        noisy = run_noisy(QCDDetector(8), ber=2e-2, seed=51)
        assert noisy.stats.true_counts.total >= clean.stats.true_counts.total
