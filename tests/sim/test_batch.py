"""Bit-exactness of the round-batched Monte-Carlo kernels.

The batched engines replay the streamed kernels' per-round RNG call
order, so the comparisons here are *exact* (``stats_equal``, every field
of every round), not distributional: a single differing bit anywhere in
the delay statistics, slot counts, or airtime fails.

A golden pin keeps the batched kernels anchored to the committed
slot-distribution file; regenerate the batched entries after an
*intentional* behavior change with::

    PYTHONPATH=src python tests/sim/test_batch.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.experiments.config import SimulationCase
from repro.experiments.parallel import GridPointJob, run_rounds
from repro.experiments.runner import AggregateStats
from repro.protocols.estimators import LowerBoundEstimator, SchouteEstimator
from repro.sim.batch import (
    BatchResult,
    bt_fast_batch,
    dfsa_fast_batch,
    fsa_fast_batch,
    stats_equal,
)
from repro.sim.fast import (
    _miss_eval,
    _miss_lut,
    _miss_prob_fn,
    _split_lefts,
    bt_fast,
    dfsa_fast,
    fsa_fast,
)
from repro.sim.metrics import DelayStats

ROUNDS = 8
N, F = 97, 48

DETECTOR_FACTORIES = {
    "qcd-8": lambda: QCDDetector(8),
    "qcd-2": lambda: QCDDetector(2),
    "crc": lambda: CRCCDDetector(id_bits=64),
    "ideal": lambda: IdealDetector(64),
}

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "data"
    / "golden_batch_kernels.json"
)


def children(salt: int, rounds: int = ROUNDS):
    return np.random.SeedSequence([4242, salt]).spawn(rounds)


def gen(child) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(child))


def assert_runs_equal(batch: BatchResult, streamed) -> None:
    assert len(batch.runs) == len(streamed)
    for a, b in zip(batch.runs, streamed):
        assert stats_equal(a, b)


class TestEquivalence:
    @pytest.mark.parametrize("scheme", sorted(DETECTOR_FACTORIES))
    def test_fsa_matches_streamed(self, scheme, timing):
        det = DETECTOR_FACTORIES[scheme]()
        kids = children(1)
        batch = fsa_fast_batch(N, F, det, timing, kids)
        streamed = [fsa_fast(N, F, det, timing, gen(c)) for c in kids]
        assert_runs_equal(batch, streamed)

    @pytest.mark.parametrize("scheme", sorted(DETECTOR_FACTORIES))
    def test_bt_matches_streamed(self, scheme, timing):
        det = DETECTOR_FACTORIES[scheme]()
        kids = children(2)
        batch = bt_fast_batch(N, det, timing, kids)
        streamed = [bt_fast(N, det, timing, gen(c)) for c in kids]
        assert_runs_equal(batch, streamed)

    @pytest.mark.parametrize(
        "estimator_factory", [SchouteEstimator, LowerBoundEstimator]
    )
    def test_dfsa_matches_streamed(self, estimator_factory, timing):
        det = QCDDetector(8)
        kids = children(3)
        batch = dfsa_fast_batch(
            N, 16, estimator_factory(), det, timing, kids
        )
        streamed = [
            dfsa_fast(N, 16, estimator_factory(), det, timing, gen(c))
            for c in kids
        ]
        assert_runs_equal(batch, streamed)

    def test_fsa_without_delays_or_confirm_frame(self, timing):
        det = QCDDetector(4)
        kids = children(4)
        batch = fsa_fast_batch(
            N, F, det, timing, kids, collect_delays=False, confirm_frame=False
        )
        streamed = [
            fsa_fast(
                N,
                F,
                det,
                timing,
                gen(c),
                collect_delays=False,
                confirm_frame=False,
            )
            for c in kids
        ]
        assert_runs_equal(batch, streamed)

    def test_bt_without_delays(self, timing):
        det = QCDDetector(4)
        kids = children(5)
        batch = bt_fast_batch(N, det, timing, kids, collect_delays=False)
        streamed = [
            bt_fast(N, det, timing, gen(c), collect_delays=False)
            for c in kids
        ]
        assert_runs_equal(batch, streamed)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_degenerate_populations(self, n, timing):
        det = QCDDetector(8)
        kids = children(6, rounds=3)
        assert_runs_equal(
            fsa_fast_batch(n, 4, det, timing, kids),
            [fsa_fast(n, 4, det, timing, gen(c)) for c in kids],
        )
        assert_runs_equal(
            bt_fast_batch(n, det, timing, kids),
            [bt_fast(n, det, timing, gen(c)) for c in kids],
        )

    def test_accepts_ready_generators(self, timing):
        """Already-built generators pass through ``_generators``."""
        det = QCDDetector(8)
        kids = children(7)
        a = fsa_fast_batch(N, F, det, timing, kids)
        b = fsa_fast_batch(N, F, det, timing, [gen(c) for c in kids])
        assert_runs_equal(a, b.runs)


class TestSharding:
    @pytest.mark.parametrize("cuts", [(1,), (3,), (1, 4), (2, 5, 7)])
    def test_shard_split_invariance(self, cuts, timing):
        """Concatenating per-shard batches reproduces the whole batch:
        the executors may split the round streams anywhere."""
        det = QCDDetector(8)
        kids = children(8)
        whole = fsa_fast_batch(N, F, det, timing, kids).runs
        bounds = [0, *cuts, ROUNDS]
        parts = []
        for lo, hi in zip(bounds, bounds[1:]):
            parts.extend(
                fsa_fast_batch(N, F, det, timing, kids[lo:hi]).runs
            )
        assert all(stats_equal(a, b) for a, b in zip(whole, parts))

    def test_bt_shard_split_invariance(self, timing):
        det = QCDDetector(8)
        kids = children(9)
        whole = bt_fast_batch(N, det, timing, kids).runs
        parts = [
            s
            for lo, hi in ((0, 3), (3, ROUNDS))
            for s in bt_fast_batch(N, det, timing, kids[lo:hi]).runs
        ]
        assert all(stats_equal(a, b) for a, b in zip(whole, parts))


class TestDispatch:
    @pytest.mark.parametrize("protocol", ["fsa", "bt"])
    def test_run_rounds_batched_matches_streamed(self, protocol, timing):
        case = SimulationCase("t", 60, 32)
        kids = tuple(children(10, rounds=5))
        jobs = {
            batched: GridPointJob(
                case=case,
                protocol=protocol,
                scheme="qcd-8",
                children=kids,
                timing=timing,
                batched=batched,
            )
            for batched in (True, False)
        }
        a = run_rounds(jobs[True])
        b = run_rounds(jobs[False])
        assert len(a) == len(b) == 5
        assert all(stats_equal(x, y) for x, y in zip(a, b))

    def test_run_rounds_unknown_protocol(self, timing):
        job = GridPointJob(
            case=SimulationCase("t", 10, 8),
            protocol="qt",
            scheme="qcd-8",
            children=tuple(children(11, rounds=1)),
            timing=timing,
        )
        with pytest.raises(ValueError, match="unknown protocol"):
            run_rounds(job)


class TestAggregate:
    def test_aggregate_matches_from_runs(self, timing):
        batch = fsa_fast_batch(N, F, QCDDetector(8), timing, children(12))
        agg = batch.aggregate()
        assert agg == AggregateStats.from_runs(list(batch.runs))

    def test_empty_runs(self):
        assert BatchResult(runs=()).runs == ()


class TestDelayStats:
    def test_from_array_matches_from_delays(self):
        rng = np.random.default_rng(5)
        arr = rng.random(501) * 100
        assert DelayStats.from_array(arr) == DelayStats.from_delays(
            arr.tolist()
        )

    def test_assume_sorted(self):
        arr = np.sort(np.random.default_rng(6).random(100))
        assert DelayStats.from_array(
            arr, assume_sorted=True
        ) == DelayStats.from_delays(arr.tolist())

    def test_empty(self):
        a = DelayStats.from_array(np.empty(0, dtype=np.float64))
        b = DelayStats.from_delays([])
        assert a.count == b.count == 0
        assert np.isnan(a.mean) and np.isnan(b.mean)


class TestMissEval:
    @pytest.mark.parametrize("scheme", sorted(DETECTOR_FACTORIES))
    def test_lut_bitwise_matches_closure(self, scheme):
        det = DETECTOR_FACTORIES[scheme]()
        m = np.arange(0, 301, dtype=np.int64)
        lut = _miss_lut(det, 300)
        assert lut is not None
        assert np.array_equal(lut, _miss_prob_fn(det)(m))
        assert np.array_equal(_miss_eval(det, 300)(m), lut)

    def test_unknown_detector_falls_back_to_closure(self):
        class Odd:
            def miss_probability(self, m: int) -> float:
                return 1.0 / (m + 1)

        det = Odd()
        assert _miss_lut(det, 49) is None
        m = np.arange(0, 50, dtype=np.int64)
        assert np.array_equal(
            _miss_eval(det, 49)(m), _miss_prob_fn(det)(m)
        )


class TestSplitLefts:
    def test_bounds_and_determinism(self):
        m = np.array([1, 2, 17, 63, 64], dtype=np.int64)
        a = _split_lefts(m, np.random.default_rng(7))
        b = _split_lefts(m, np.random.default_rng(7))
        assert np.array_equal(a, b)
        assert np.all(a >= 0) and np.all(a <= m)

    def test_multiword_groups(self):
        m = np.array([65, 200, 3], dtype=np.int64)
        lefts = _split_lefts(m, np.random.default_rng(8))
        assert np.all(lefts >= 0) and np.all(lefts <= m)

    def test_binomial_mean(self):
        rng = np.random.default_rng(9)
        m = np.full(4000, 40, dtype=np.int64)
        lefts = _split_lefts(m, rng)
        assert abs(lefts.mean() - 20.0) < 0.5


class TestValidation:
    def test_fsa_rejects_bad_shapes(self, timing):
        det = QCDDetector(8)
        with pytest.raises(ValueError):
            fsa_fast_batch(-1, F, det, timing, children(13, rounds=1))
        with pytest.raises(ValueError):
            fsa_fast_batch(N, 0, det, timing, children(13, rounds=1))

    def test_dfsa_rejects_bad_bounds(self, timing):
        det = QCDDetector(8)
        with pytest.raises(ValueError):
            dfsa_fast_batch(
                N,
                16,
                SchouteEstimator(),
                det,
                timing,
                children(14, rounds=1),
                min_frame_size=8,
                max_frame_size=4,
            )

    def test_bt_rejects_negative(self, timing):
        with pytest.raises(ValueError):
            bt_fast_batch(-1, QCDDetector(8), timing, children(15, rounds=1))


# ----------------------------------------------------------------------
# golden pin


def generate() -> dict:
    """Batched-kernel counts at the streamed golden's grid point."""
    timing = TimingModel()
    n_tags, seed, strength = 30, 2010, 4

    def _counts(stats) -> dict:
        return {
            "true": {
                "idle": stats.true_counts.idle,
                "single": stats.true_counts.single,
                "collided": stats.true_counts.collided,
            },
            "detected": {
                "idle": stats.detected_counts.idle,
                "single": stats.detected_counts.single,
                "collided": stats.detected_counts.collided,
            },
            "total_time": stats.total_time,
            "missed_collisions": stats.missed_collisions,
        }

    out = {
        "_config": {
            "n_tags": n_tags,
            "frame_size": 16,
            "seed": seed,
            "scheme": f"qcd-{strength}",
        },
        "fsa-batch": _counts(
            fsa_fast_batch(
                n_tags,
                16,
                QCDDetector(strength),
                timing,
                [np.random.default_rng(seed)],
            ).runs[0]
        ),
        "dfsa-batch": _counts(
            dfsa_fast_batch(
                n_tags,
                16,
                SchouteEstimator(),
                QCDDetector(strength),
                timing,
                [np.random.default_rng(seed)],
            ).runs[0]
        ),
        "bt-batch": _counts(
            bt_fast_batch(
                n_tags,
                QCDDetector(strength),
                timing,
                [np.random.default_rng(seed)],
            ).runs[0]
        ),
    }
    return out


class TestGoldenBatch:
    def test_matches_golden_file_exactly(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert generate() == golden

    def test_batched_matches_streamed_golden_entries(self):
        """The batched kernels must reproduce the *streamed* golden
        entries too -- same grid point, same seed, same counts."""
        streamed = json.loads(
            (GOLDEN_PATH.parent / "golden_slot_distribution.json").read_text()
        )
        batched = generate()
        assert batched["fsa-batch"] == streamed["fsa-fast"]
        assert batched["bt-batch"] == streamed["bt-fast"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(generate(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
