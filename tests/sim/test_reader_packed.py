"""The exact Reader's uint64 fast path vs the object path.

The packed path replaces BitVector payloads with machine-word integers
(QCD's ``r ⊕ r̄`` fits in ``2l <= 64`` bits) and the channel's Boolean
sum with ``np.bitwise_or.reduce`` -- but it must be *observationally
identical*: same RNG consumption, same slot verdicts, same stats, same
channel accounting.  These tests pin that equivalence and the gating
rules (tracing or invariant checking forces the object path).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.bits.channel import Channel
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.verify import invariants


def run(detector, timing, protocol_factory, n, seed, packed):
    pop = TagPopulation(n, id_bits=timing.id_bits, rng=make_rng(seed))
    reader = Reader(detector, timing, packed=packed)
    res = reader.run_inventory(pop.tags, protocol_factory())
    return reader, res


def assert_identical(res_a, res_b):
    assert res_a.identified_ids == res_b.identified_ids
    assert res_a.lost_ids == res_b.lost_ids
    assert res_a.stats == res_b.stats
    assert len(res_a.trace) == len(res_b.trace)
    for ra, rb in zip(res_a.trace, res_b.trace):
        assert ra == rb


class TestEquivalence:
    @pytest.mark.parametrize("strength", [2, 8, 16])
    @pytest.mark.parametrize(
        "protocol_factory", [lambda: FramedSlottedAloha(16), BinaryTree]
    )
    @pytest.mark.parametrize("n", [0, 1, 37])
    def test_packed_matches_object_path(
        self, strength, protocol_factory, n, timing
    ):
        _, a = run(
            QCDDetector(strength), timing, protocol_factory, n, 31, True
        )
        _, b = run(
            QCDDetector(strength), timing, protocol_factory, n, 31, False
        )
        assert_identical(a, b)

    def test_detector_counters_match(self, timing):
        ra, _ = run(
            QCDDetector(8), timing, lambda: FramedSlottedAloha(16), 37, 32, True
        )
        rb, _ = run(
            QCDDetector(8), timing, lambda: FramedSlottedAloha(16), 37, 32, False
        )
        assert ra.detector.classify_calls == rb.detector.classify_calls
        assert (
            ra.detector.function_evaluations
            == rb.detector.function_evaluations
        )

    def test_channel_stats_match(self, timing):
        ra, _ = run(QCDDetector(8), timing, BinaryTree, 37, 33, True)
        rb, _ = run(QCDDetector(8), timing, BinaryTree, 37, 33, False)
        assert dataclasses.asdict(ra.channel.stats) == dataclasses.asdict(
            rb.channel.stats
        )


class TestGating:
    def test_auto_gate_uses_packed_when_supported(self, timing):
        assert Reader(QCDDetector(8), timing)._use_packed()

    def test_auto_gate_falls_back_for_crc(self, timing):
        reader = Reader(CRCCDDetector(id_bits=timing.id_bits), timing)
        assert not reader._use_packed()

    def test_auto_gate_falls_back_for_noisy_channel(self, timing, rng):
        reader = Reader(
            QCDDetector(8),
            timing,
            channel=Channel(bit_error_rate=0.1, rng=rng.child()),
        )
        assert not reader._use_packed()

    def test_tracing_forces_object_path(self, timing):
        obs.enable()
        try:
            assert not Reader(QCDDetector(8), timing)._use_packed()
        finally:
            obs.disable()

    def test_invariants_force_object_path(self, timing):
        with invariants.checking():
            assert not Reader(QCDDetector(8), timing)._use_packed()
        invariants.reset()

    def test_packed_false_forces_object_path(self, timing):
        assert not Reader(QCDDetector(8), timing, packed=False)._use_packed()

    def test_packed_true_requires_support(self, timing, rng):
        with pytest.raises(ValueError, match="packed"):
            Reader(CRCCDDetector(id_bits=timing.id_bits), timing, packed=True)
        with pytest.raises(ValueError, match="packed"):
            Reader(
                QCDDetector(8),
                timing,
                channel=Channel(bit_error_rate=0.1, rng=rng.child()),
                packed=True,
            )

    def test_packed_true_still_yields_to_tracing(self, timing):
        """Explicit ``packed=True`` must not silently skip tracing --
        enabled instrumentation wins, with identical verdicts either way."""
        reader = Reader(QCDDetector(8), timing, packed=True)
        obs.enable()
        try:
            assert not reader._use_packed()
        finally:
            obs.disable()
        assert reader._use_packed()

    def test_verdicts_survive_gate_flip(self, timing):
        """Enabling invariants mid-experiment flips the gate but not the
        outcome: the object path replays the identical inventory."""
        _, a = run(
            QCDDetector(4), timing, lambda: FramedSlottedAloha(8), 21, 34, None
        )
        with invariants.checking():
            _, b = run(
                QCDDetector(4),
                timing,
                lambda: FramedSlottedAloha(8),
                21,
                34,
                None,
            )
        invariants.reset()
        assert_identical(a, b)
