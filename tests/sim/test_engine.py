"""Mobile-inventory engine tests."""

from __future__ import annotations

import pytest

from repro.core.qcd import QCDDetector
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.engine import MobileInventoryEngine
from repro.sim.reader import Reader
from repro.tags.mobility import MobilityEvent, MobilitySchedule, poisson_arrivals
from repro.bits.rng import make_rng
from repro.tags.population import TagPopulation


def engine():
    return MobileInventoryEngine(Reader(QCDDetector(8)))


class TestStaticEquivalence:
    def test_empty_schedule_matches_static(self, make_population):
        pop = make_population(20)
        result = engine().run(
            FramedSlottedAloha(16), MobilitySchedule(), initial_tags=pop.tags
        )
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert not result.escaped_ids
        assert result.escape_rate == 0.0


class TestArrivals:
    def test_all_arrivals_identified_with_long_dwell(self):
        pop = TagPopulation(15, rng=make_rng(8))
        sched = MobilitySchedule(
            [
                MobilityEvent(time=float(i * 50), seq=i, kind="arrive", tag=t)
                for i, t in enumerate(pop.tags)
            ]
        )
        result = engine().run(FramedSlottedAloha(8), sched)
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert result.sojourn_delays.count == 15

    def test_idle_gap_jumps_to_next_arrival(self):
        pop = TagPopulation(2, rng=make_rng(8))
        sched = MobilitySchedule(
            [
                MobilityEvent(time=0.0, seq=0, kind="arrive", tag=pop.tags[0]),
                MobilityEvent(time=1e6, seq=1, kind="arrive", tag=pop.tags[1]),
            ]
        )
        result = engine().run(FramedSlottedAloha(4), sched)
        assert len(result.identified_ids) == 2
        assert result.end_time >= 1e6


class TestDepartures:
    def test_fast_departure_escapes(self):
        pop = TagPopulation(5, rng=make_rng(8))
        events = []
        for i, t in enumerate(pop.tags):
            events.append(MobilityEvent(time=0.0, seq=2 * i, kind="arrive", tag=t))
        # One tag departs before it can possibly be identified.
        victim = pop.tags[0]
        events.append(
            MobilityEvent(time=1.0, seq=99, kind="depart", tag=victim)
        )
        result = engine().run(FramedSlottedAloha(8), MobilitySchedule(events))
        assert victim.tag_id in result.escaped_ids
        assert victim.tag_id not in result.identified_ids
        assert len(result.identified_ids) == 4
        assert result.escape_rate == pytest.approx(1 / 5)

    def test_identified_departure_not_escaped(self):
        pop = TagPopulation(3, rng=make_rng(8))
        events = [
            MobilityEvent(time=0.0, seq=i, kind="arrive", tag=t)
            for i, t in enumerate(pop.tags)
        ]
        events.append(
            MobilityEvent(time=1e9, seq=50, kind="depart", tag=pop.tags[0])
        )
        result = engine().run(FramedSlottedAloha(4), MobilitySchedule(events))
        assert not result.escaped_ids


class TestQcdAdvantage:
    def test_qcd_loses_fewer_mobile_tags_than_crc(self):
        """The paper's Section VI-D motivation, end to end: same arrival
        process, same dwell times -- the faster detector identifies more
        tags before they leave."""
        from repro.core.crc_cd import CRCCDDetector

        def escape_rate(detector, seed):
            pop = TagPopulation(60, rng=make_rng(seed))
            sched = poisson_arrivals(
                pop.tags, rate=1 / 50.0, dwell_mean=700.0, rng=make_rng(seed + 1)
            )
            eng = MobileInventoryEngine(Reader(detector))
            return eng.run(BinaryTree(), sched).escape_rate

        qcd = sum(escape_rate(QCDDetector(8), s) for s in (1, 2, 3)) / 3
        crc = sum(escape_rate(CRCCDDetector(id_bits=64), s) for s in (1, 2, 3)) / 3
        assert qcd < crc

    def test_max_slots_guard(self):
        pop = TagPopulation(30, rng=make_rng(8))
        sched = MobilitySchedule(
            [
                MobilityEvent(time=0.0, seq=i, kind="arrive", tag=t)
                for i, t in enumerate(pop.tags)
            ]
        )
        eng = MobileInventoryEngine(Reader(QCDDetector(8)), max_slots=3)
        with pytest.raises(RuntimeError, match="max_slots"):
            eng.run(FramedSlottedAloha(16), sched)
