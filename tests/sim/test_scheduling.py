"""Reader-scheduling tests: interference graph and coloring."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.sim.deployment import Deployment
from repro.sim.scheduling import color_schedule, interference_graph


def dense_deployment(seed=1):
    # 25 readers of range 12 m on a 100x100 grid: heavy overlap.
    return Deployment.table5(
        50, make_rng(seed), n_readers=25, reader_range=12.0
    )


class TestInterferenceGraph:
    def test_table5_graph_is_empty(self):
        dep = Deployment.table5(10, make_rng(1))
        g = interference_graph(dep)
        assert g.number_of_edges() == 0
        assert g.number_of_nodes() == 100

    def test_dense_graph_has_edges(self):
        g = interference_graph(dense_deployment())
        assert g.number_of_edges() > 0

    def test_edges_match_geometry(self):
        dep = dense_deployment()
        g = interference_graph(dep)
        by_id = {r.reader_id: r for r in dep.readers}
        for a, b in g.edges:
            assert by_id[a].distance_to(by_id[b]) <= 24.0

    def test_guard_factor_adds_edges(self):
        dep = Deployment.table5(10, make_rng(2), n_readers=16, reader_range=6.0)
        base = interference_graph(dep, 1.0).number_of_edges()
        guarded = interference_graph(dep, 3.0).number_of_edges()
        assert guarded > base

    def test_invalid_guard(self):
        with pytest.raises(ValueError):
            interference_graph(dense_deployment(), 0.5)


class TestColoring:
    def test_rounds_partition_readers(self):
        dep = dense_deployment()
        rounds = color_schedule(dep)
        flat = [r for rnd in rounds for r in rnd]
        assert sorted(flat) == [r.reader_id for r in dep.readers]

    def test_no_intra_round_interference(self):
        """The defining property: readers in one round never interfere --
        the paper's 'no reader-reader collision' assumption, constructed."""
        dep = dense_deployment()
        g = interference_graph(dep)
        for rnd in color_schedule(dep):
            for i, a in enumerate(rnd):
                for b in rnd[i + 1 :]:
                    assert not g.has_edge(a, b)

    def test_empty_graph_single_round(self):
        dep = Deployment.table5(10, make_rng(1))
        rounds = color_schedule(dep)
        assert len(rounds) == 1
        assert len(rounds[0]) == 100

    def test_round_count_reasonable(self):
        """Greedy coloring of a disk graph uses at most Δ+1 colors."""
        dep = dense_deployment()
        g = interference_graph(dep)
        max_deg = max(dict(g.degree).values())
        assert len(color_schedule(dep)) <= max_deg + 1


class TestEdgeCases:
    """Degenerate deployments the scheduler must survive."""

    @staticmethod
    def _empty():
        from repro.tags.population import TagPopulation

        return Deployment(10.0, 10.0, [], TagPopulation(0))

    def test_empty_deployment_graph(self):
        g = interference_graph(self._empty())
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0

    def test_empty_deployment_schedule(self):
        assert color_schedule(self._empty()) == []

    def test_single_reader_single_round(self):
        from repro.sim.deployment import Reader2D
        from repro.tags.population import TagPopulation

        dep = Deployment(
            10.0, 10.0, [Reader2D(7, 5.0, 5.0, 3.0)], TagPopulation(0)
        )
        assert color_schedule(dep) == [[7]]

    def test_empty_deployment_rejects_bad_guard(self):
        with pytest.raises(ValueError):
            interference_graph(self._empty(), 0.0)
