"""Spatial deployment tests (Table V scenario)."""

from __future__ import annotations

import math

import pytest

from repro.bits.rng import make_rng
from repro.sim.deployment import Deployment, Reader2D
from repro.tags.population import TagPopulation


class TestReader2D:
    def test_covers(self):
        r = Reader2D(0, 10.0, 10.0, 3.0)
        assert r.covers((11.0, 11.0))
        assert not r.covers((14.0, 10.0))
        assert r.covers((13.0, 10.0))  # boundary inclusive

    def test_distance(self):
        a = Reader2D(0, 0.0, 0.0, 1.0)
        b = Reader2D(1, 3.0, 4.0, 1.0)
        assert a.distance_to(b) == pytest.approx(5.0)


class TestTable5Setup:
    def test_dimensions(self):
        dep = Deployment.table5(200, make_rng(1))
        assert len(dep.readers) == 100
        assert len(dep.population) == 200
        assert all(r.range_m == 3.0 for r in dep.readers)
        assert all(t.id_bits == 96 for t in dep.population)

    def test_grid_placement_in_bounds(self):
        dep = Deployment.table5(10, make_rng(1), placement="grid")
        for r in dep.readers:
            assert 0 <= r.x <= 100 and 0 <= r.y <= 100

    def test_uniform_placement_in_bounds(self):
        dep = Deployment.table5(10, make_rng(1), placement="uniform")
        for r in dep.readers:
            assert 0 <= r.x <= 100 and 0 <= r.y <= 100

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            Deployment.table5(10, make_rng(1), placement="spiral")

    def test_grid_spacing_exceeds_range(self):
        """With Table V parameters a 10x10 grid spaces readers 10 m apart
        -- more than 2x the 3 m range, so the interference graph is empty
        and the coverage has holes."""
        dep = Deployment.table5(100, make_rng(1))
        assert dep.overlap_pairs() == []
        assert dep.coverage_fraction() < 1.0


class TestAssignment:
    def test_assignment_respects_geometry(self):
        dep = Deployment.table5(300, make_rng(2))
        for reader_id, tags in dep.assignment().items():
            reader = dep.readers[reader_id]
            for tag in tags:
                assert reader.covers(tag.position)

    def test_coverage_fraction_matches_disk_area(self):
        """100 disks of radius 3 on a 100x100 grid cover pi*9*100/10^4
        ≈ 28% of the area; random tags land inside at about that rate."""
        dep = Deployment.table5(2000, make_rng(3))
        expected = 100 * math.pi * 9 / 10_000
        assert dep.coverage_fraction() == pytest.approx(expected, abs=0.05)

    def test_covered_tags_unique(self):
        dep = Deployment.table5(500, make_rng(4), n_readers=25, reader_range=12.0)
        covered = dep.covered_tags()
        assert len(covered) == len({id(t) for t in covered})

    def test_positions_required(self):
        pop = TagPopulation(5, id_bits=96, rng=make_rng(0))  # no area
        dep = Deployment(100.0, 100.0, [Reader2D(0, 0, 0, 3.0)], pop)
        with pytest.raises(ValueError, match="positions"):
            dep.assignment()

    def test_overlap_pairs_dense(self):
        dep = Deployment.table5(10, make_rng(5), n_readers=25, reader_range=12.0)
        assert len(dep.overlap_pairs()) > 0

    def test_empty_population_coverage(self):
        dep = Deployment.table5(0, make_rng(6))
        assert dep.coverage_fraction() == 1.0
