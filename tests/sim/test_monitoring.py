"""Continuous-monitoring tests: adaptive protocols across churning rounds."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.bt import BinaryTree
from repro.sim.monitoring import ContinuousMonitor
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 40


def monitor(protocol, seed=5, id_bits=64):
    return ContinuousMonitor(
        Reader(QCDDetector(8)),
        protocol,
        rng=make_rng(seed),
        id_bits=id_bits,
    )


def population(seed=5, n=N, id_bits=64):
    return TagPopulation(n, id_bits=id_bits, rng=make_rng(seed + 1000))


class TestBasics:
    def test_every_round_completes(self):
        result = monitor(BinaryTree()).run(population(), rounds=4, churn=0)
        assert len(result.rounds) == 4
        for rnd in result.rounds:
            assert rnd.identified == rnd.present == N

    def test_validation(self):
        m = monitor(BinaryTree())
        with pytest.raises(ValueError):
            m.run(population(), rounds=0)
        with pytest.raises(ValueError):
            m.run(population(), rounds=1, churn=-1)

    def test_churn_changes_population(self):
        result = monitor(BinaryTree(), seed=9).run(
            population(9), rounds=3, churn=5
        )
        for rnd in result.rounds[1:]:
            assert rnd.arrivals == 5
            assert rnd.departures == 5
            assert rnd.present == N
        assert result.rounds[0].arrivals == 0

    def test_totals(self):
        result = monitor(BinaryTree(), seed=2).run(population(2), rounds=3)
        assert result.total_slots == sum(r.slots for r in result.rounds)
        assert result.total_time == pytest.approx(
            sum(r.time for r in result.rounds)
        )


class TestAdaptiveAdvantage:
    def test_abs_steady_state_is_one_slot_per_tag(self):
        result = monitor(AdaptiveBinarySplitting(), seed=3).run(
            population(3), rounds=4, churn=0
        )
        for rnd in result.steady_state():
            assert rnd.collided == 0
            assert rnd.slots == N

    def test_aqs_steady_state_collision_free(self):
        result = monitor(AdaptiveQuerySplitting(), seed=4, id_bits=16).run(
            population(4, id_bits=16), rounds=4, churn=0
        )
        for rnd in result.steady_state():
            assert rnd.collided == 0

    def test_abs_beats_bt_under_low_churn(self):
        abs_res = monitor(AdaptiveBinarySplitting(), seed=6).run(
            population(6), rounds=6, churn=2
        )
        bt_res = monitor(BinaryTree(), seed=6).run(
            population(6), rounds=6, churn=2
        )
        abs_steady = sum(r.slots for r in abs_res.steady_state())
        bt_steady = sum(r.slots for r in bt_res.steady_state())
        assert abs_steady < 0.75 * bt_steady

    def test_abs_churn_cost_is_local(self):
        """Churn of k tags should cost O(k) extra slots, not O(n)."""
        quiet = monitor(AdaptiveBinarySplitting(), seed=7).run(
            population(7), rounds=4, churn=0
        )
        churny = monitor(AdaptiveBinarySplitting(), seed=7).run(
            population(7), rounds=4, churn=3
        )
        quiet_avg = sum(r.slots for r in quiet.steady_state()) / 3
        churny_avg = sum(r.slots for r in churny.steady_state()) / 3
        assert churny_avg - quiet_avg < 25  # ~ a few slots per moved tag

    def test_aqs_discovers_all_arrivals(self):
        result = monitor(AdaptiveQuerySplitting(), seed=8, id_bits=16).run(
            population(8, id_bits=16), rounds=5, churn=4
        )
        for rnd in result.rounds:
            assert rnd.identified == rnd.present
