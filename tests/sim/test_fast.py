"""Cross-validation of the vectorized kernels against the exact reader.

The kernels simulate the same stochastic process with different random
streams, so the comparison is distributional: means over a batch of rounds
must agree within Monte-Carlo tolerance.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.fast import bt_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.bits.rng import make_rng

ROUNDS = 12
N, F = 120, 64


def exact_fsa_batch(detector_factory, timing):
    out = []
    for i in range(ROUNDS):
        pop = TagPopulation(N, rng=make_rng(100 + i))
        res = Reader(detector_factory(), timing).run_inventory(
            pop.tags, FramedSlottedAloha(F)
        )
        out.append(res.stats)
    return out


def fast_fsa_batch(detector, timing):
    return [
        fsa_fast(N, F, detector, timing, np.random.default_rng(200 + i))
        for i in range(ROUNDS)
    ]


def exact_bt_batch(detector_factory, timing):
    out = []
    for i in range(ROUNDS):
        pop = TagPopulation(N, rng=make_rng(300 + i))
        res = Reader(detector_factory(), timing).run_inventory(
            pop.tags, BinaryTree()
        )
        out.append(res.stats)
    return out


def fast_bt_batch(detector, timing):
    return [
        bt_fast(N, detector, timing, np.random.default_rng(400 + i))
        for i in range(ROUNDS)
    ]


def mean(stats, f):
    return statistics.mean(f(s) for s in stats)


@pytest.fixture(scope="module")
def tm():
    return TimingModel()


class TestFsaCrossValidation:
    def test_slot_counts_match(self, tm):
        exact = exact_fsa_batch(lambda: QCDDetector(8), tm)
        fast = fast_fsa_batch(QCDDetector(8), tm)
        for field in ("idle", "single", "collided"):
            e = mean(exact, lambda s: getattr(s.true_counts, field))
            f = mean(fast, lambda s: getattr(s.true_counts, field))
            assert f == pytest.approx(e, rel=0.15), field

    def test_total_time_matches(self, tm):
        exact = exact_fsa_batch(lambda: QCDDetector(8), tm)
        fast = fast_fsa_batch(QCDDetector(8), tm)
        assert mean(fast, lambda s: s.total_time) == pytest.approx(
            mean(exact, lambda s: s.total_time), rel=0.1
        )

    def test_delay_matches(self, tm):
        exact = exact_fsa_batch(lambda: QCDDetector(8), tm)
        fast = fast_fsa_batch(QCDDetector(8), tm)
        assert mean(fast, lambda s: s.delay.mean) == pytest.approx(
            mean(exact, lambda s: s.delay.mean), rel=0.15
        )

    def test_crc_detector_time(self, tm):
        exact = exact_fsa_batch(lambda: CRCCDDetector(id_bits=64), tm)
        fast = fast_fsa_batch(CRCCDDetector(id_bits=64), tm)
        assert mean(fast, lambda s: s.total_time) == pytest.approx(
            mean(exact, lambda s: s.total_time), rel=0.1
        )

    def test_accuracy_matches_at_low_strength(self, tm):
        """l = 2 misses often; the kernels must reproduce the rate."""
        exact = exact_fsa_batch(lambda: QCDDetector(2), tm)
        fast = fast_fsa_batch(QCDDetector(2), tm)
        e = mean(exact, lambda s: s.accuracy)
        f = mean(fast, lambda s: s.accuracy)
        assert f == pytest.approx(e, abs=0.05)


class TestBtCrossValidation:
    def test_slot_counts_match(self, tm):
        exact = exact_bt_batch(lambda: QCDDetector(8), tm)
        fast = fast_bt_batch(QCDDetector(8), tm)
        for field in ("idle", "single", "collided"):
            e = mean(exact, lambda s: getattr(s.true_counts, field))
            f = mean(fast, lambda s: getattr(s.true_counts, field))
            assert f == pytest.approx(e, rel=0.15), field

    def test_total_time_matches(self, tm):
        exact = exact_bt_batch(lambda: QCDDetector(8), tm)
        fast = fast_bt_batch(QCDDetector(8), tm)
        assert mean(fast, lambda s: s.total_time) == pytest.approx(
            mean(exact, lambda s: s.total_time), rel=0.1
        )

    def test_singles_exact(self, tm):
        for s in fast_bt_batch(QCDDetector(8), tm):
            assert s.true_counts.single == N


class TestKernelEdgeCases:
    def test_zero_tags_fsa(self, tm):
        stats = fsa_fast(0, 16, QCDDetector(8), tm, np.random.default_rng(0))
        # Only the confirmation frame runs.
        assert stats.true_counts.single == 0
        assert stats.true_counts.idle == 16

    def test_zero_tags_fsa_no_confirm(self, tm):
        stats = fsa_fast(
            0, 16, QCDDetector(8), tm, np.random.default_rng(0), confirm_frame=False
        )
        assert stats.true_counts.total == 0

    def test_zero_tags_bt(self, tm):
        stats = bt_fast(0, QCDDetector(8), tm, np.random.default_rng(0))
        assert stats.true_counts.total == 0

    def test_one_tag_bt(self, tm):
        stats = bt_fast(1, QCDDetector(8), tm, np.random.default_rng(0))
        assert stats.true_counts.total == 1
        assert stats.true_counts.single == 1

    def test_invalid_args(self, tm):
        with pytest.raises(ValueError):
            fsa_fast(-1, 16, QCDDetector(8), tm, np.random.default_rng(0))
        with pytest.raises(ValueError):
            fsa_fast(5, 0, QCDDetector(8), tm, np.random.default_rng(0))
        with pytest.raises(ValueError):
            bt_fast(-1, QCDDetector(8), tm, np.random.default_rng(0))

    def test_ideal_detector_never_misses(self, tm):
        stats = fsa_fast(200, 64, IdealDetector(64), tm, np.random.default_rng(1))
        assert stats.missed_collisions == 0
        assert stats.accuracy == 1.0

    def test_reproducible(self, tm):
        a = fsa_fast(100, 64, QCDDetector(8), tm, np.random.default_rng(5))
        b = fsa_fast(100, 64, QCDDetector(8), tm, np.random.default_rng(5))
        assert a.true_counts == b.true_counts
        assert a.total_time == b.total_time

    def test_generic_detector_fallback(self, tm):
        """A detector outside the known three goes through the generic
        miss-probability path."""
        from repro.core.detector import CollisionDetector, SlotOutcome, SlotType
        from repro.bits.bitvec import BitVector

        class Flaky(CollisionDetector):
            name = "flaky"
            needs_id_phase = False

            @property
            def contention_bits(self):
                return 8

            def contention_payload(self, tag_id, rng):
                return BitVector(1, 8)

            def classify(self, signal):
                return SlotOutcome(SlotType.IDLE)

            def miss_probability(self, m):
                return 0.5

        stats = fsa_fast(100, 32, Flaky(), tm, np.random.default_rng(2))
        assert stats.missed_collisions > 0
