"""Reader tests: slot loop, misdetection policies, instrumentation."""

from __future__ import annotations

import pytest

from repro.bits.channel import Channel
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import POLICIES, Reader, record_effective
from repro.sim.trace import SlotRecord


class TestBasicLoop:
    def test_complete_inventory(self, make_population):
        pop = make_population(30)
        result = Reader(QCDDetector(8)).run_inventory(
            pop.tags, FramedSlottedAloha(16)
        )
        assert result.complete
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert pop.all_identified()

    def test_identified_at_matches_trace(self, make_population):
        pop = make_population(10)
        result = Reader(QCDDetector(8)).run_inventory(
            pop.tags, FramedSlottedAloha(8)
        )
        by_id = {t.tag_id: t for t in pop}
        for rec in result.trace:
            if rec.identified_tag is not None:
                assert by_id[rec.identified_tag].identified_at == rec.end_time

    def test_time_accumulates_slot_durations(self, make_population, timing):
        pop = make_population(20)
        result = Reader(QCDDetector(8), timing).run_inventory(
            pop.tags, FramedSlottedAloha(16)
        )
        assert result.stats.total_time == pytest.approx(
            sum(r.duration for r in result.trace)
        )
        assert result.trace[-1].end_time == pytest.approx(result.stats.total_time)

    def test_works_with_all_detectors(self, make_population):
        for det in (QCDDetector(8), CRCCDDetector(id_bits=64), IdealDetector(64)):
            pop = make_population(15)
            result = Reader(det).run_inventory(pop.tags, FramedSlottedAloha(8))
            assert result.stats.true_counts.single == 15

    def test_max_slots_guard(self, make_population):
        pop = make_population(30)
        reader = Reader(QCDDetector(8), max_slots=5)
        with pytest.raises(RuntimeError, match="max_slots"):
            reader.run_inventory(pop.tags, FramedSlottedAloha(16))


class TestPolicies:
    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="policy"):
            Reader(QCDDetector(8), policy="hope")

    def test_crc_guard_requires_guard_timing(self):
        with pytest.raises(ValueError, match="guard_id_phase"):
            Reader(QCDDetector(8), policy="crc_guard")

    def test_crc_guard_accepted_with_guard_timing(self):
        Reader(
            QCDDetector(8),
            TimingModel(guard_id_phase=True),
            policy="crc_guard",
        )

    def test_lost_policy_loses_tags_at_weak_strength(self, make_population):
        """With l = 1 misses are frequent (P = 1 for pair collisions:
        both tags must draw the single value 1), so tags get lost."""
        pop = make_population(40)
        reader = Reader(QCDDetector(1), policy="lost")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(20))
        assert result.lost_ids  # l=1 collides invisibly all the time
        assert not result.complete
        assert result.stats.lost_tags == len(result.lost_ids)
        lost_set = set(result.lost_ids)
        assert lost_set.isdisjoint(result.identified_ids)

    def test_paper_policy_never_loses(self, make_population):
        pop = make_population(40)
        reader = Reader(QCDDetector(1), policy="paper")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(20))
        assert result.complete
        assert result.stats.missed_collisions > 0  # errors counted, not fatal

    def test_lost_tags_marked(self, make_population):
        pop = make_population(40)
        reader = Reader(QCDDetector(1), policy="lost")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(20))
        for tag in pop:
            if tag.tag_id in set(result.lost_ids):
                assert tag.lost and tag.identified


class TestRecordEffective:
    @staticmethod
    def rec(true_type, detected_type):
        return SlotRecord(
            index=0,
            frame=1,
            n_responders=2,
            true_type=true_type,
            detected_type=detected_type,
            duration=1.0,
            end_time=1.0,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_agreement_passes_through(self, policy):
        r = self.rec(SlotType.SINGLE, SlotType.SINGLE)
        assert record_effective(r, policy) is SlotType.SINGLE

    def test_paper_restores_truth_on_miss(self):
        r = self.rec(SlotType.COLLIDED, SlotType.SINGLE)
        assert record_effective(r, "paper") is SlotType.COLLIDED
        assert record_effective(r, "crc_guard") is SlotType.COLLIDED

    def test_lost_follows_detection_on_miss(self):
        r = self.rec(SlotType.COLLIDED, SlotType.SINGLE)
        assert record_effective(r, "lost") is SlotType.SINGLE

    def test_false_collision_recontends(self):
        r = self.rec(SlotType.SINGLE, SlotType.COLLIDED)
        for policy in POLICIES:
            assert record_effective(r, policy) is SlotType.COLLIDED


class TestMissedCollisionTiming:
    def test_missed_collision_charged_as_single(self, make_population):
        """A miss triggers the ID phase, so the slot costs single-length
        airtime even though it was truly collided."""
        pop = make_population(40)
        reader = Reader(QCDDetector(1), policy="paper")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(20))
        missed = [
            r
            for r in result.trace
            if r.true_type is SlotType.COLLIDED
            and r.detected_type is SlotType.SINGLE
        ]
        assert missed
        for rec in missed:
            assert rec.duration == 2 + 64  # l_prm + l_id at strength 1


class TestChannelIntegration:
    def test_channel_stats_accumulate(self, make_population):
        channel = Channel()
        pop = make_population(20)
        Reader(QCDDetector(8), channel=channel).run_inventory(
            pop.tags, FramedSlottedAloha(16)
        )
        assert channel.stats.slots > 0
        assert channel.stats.transmissions >= 20
