"""Full-trace differential suite for the frame-batched Reader.

The frame-batched fast path must be *indistinguishable* from the per-slot
paths: every ``SlotRecord`` field, the identified/lost ID lists, the
aggregate stats, the channel counters and the protocol's final state must
match the object path (``packed=False``) and the per-slot packed path
(``frame_batched=False``) bit for bit.  The grid is FSA/DFSA × QCD/CRC-CD
× all three misdetection policies, with populations drawn from
``repro.verify.strategies`` (edges n = 0, 1, 2 included).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.verify.strategies import (
    adequate_frame,
    frame_slacks,
    population_factories,
)

#: 16-bit IDs keep CRC-CD's packed id ⊕ crc(id) payload inside one word.
ID_BITS = 16

#: (packed, frame_batched) per tier; the object tier is the reference.
TIERS = ((False, True), (True, False), (True, True))

DETECTORS = {
    "qcd8": lambda: QCDDetector(8),
    # Strength 2 misses collisions often, so the misdetection policies
    # (and the lost-tag bookkeeping) actually fire.
    "qcd2": lambda: QCDDetector(2),
    "crc": lambda: CRCCDDetector(id_bits=ID_BITS),
}

PROTOCOLS = {
    "fsa": lambda n, slack: FramedSlottedAloha(adequate_frame(n, slack)),
    "dfsa": lambda n, slack: DynamicFSA(initial_frame_size=max(2, n // 4)),
}


def _timing(policy: str) -> TimingModel:
    return TimingModel(
        id_bits=ID_BITS, guard_id_phase=(policy == "crc_guard")
    )


def _run_tier(pop_factory, protocol, detector, policy, packed, frame_batched):
    pop = pop_factory()
    reader = Reader(
        detector,
        _timing(policy),
        policy=policy,
        packed=packed,
        frame_batched=frame_batched,
    )
    result = reader.run_inventory(pop.tags, protocol)
    return result, reader.channel.stats, protocol


def _assert_identical(reference, other, label: str):
    res0, chan0, proto0 = reference
    res1, chan1, proto1 = other
    assert res1.trace == res0.trace, label
    assert res1.identified_ids == res0.identified_ids, label
    assert res1.lost_ids == res0.lost_ids, label
    assert res1.stats == res0.stats, label
    assert chan1 == chan0, label
    assert proto1.frames_started == proto0.frames_started, label
    assert proto1.slots_elapsed == proto0.slots_elapsed, label


@pytest.mark.parametrize("policy", ("paper", "crc_guard", "lost"))
@pytest.mark.parametrize("det_name", sorted(DETECTORS))
@pytest.mark.parametrize("proto_name", sorted(PROTOCOLS))
@settings(max_examples=12, deadline=None)
@given(pop_factory=population_factories(), slack=frame_slacks(16))
def test_trace_identity_across_tiers(
    proto_name, det_name, policy, pop_factory, slack
):
    n = len(pop_factory())
    runs = [
        _run_tier(
            pop_factory,
            PROTOCOLS[proto_name](n, slack),
            DETECTORS[det_name](),
            policy,
            packed,
            frame_batched,
        )
        for packed, frame_batched in TIERS
    ]
    for tier, run in zip(TIERS[1:], runs[1:]):
        _assert_identical(runs[0], run, f"{proto_name}/{det_name}/{tier}")


@pytest.mark.parametrize("termination", ("confirm", "frame", "immediate"))
def test_fsa_termination_modes_identical(termination):
    """All FSA termination modes stay tier-identical -- ``immediate``
    declines frame batching (mid-frame truncation would desynchronize
    the upfront frame accounting) and must fall back transparently."""
    runs = [
        _run_tier(
            lambda: TagPopulation(23, id_bits=ID_BITS, rng=make_rng(404)),
            FramedSlottedAloha(8, termination=termination),
            QCDDetector(8),
            "paper",
            packed,
            frame_batched,
        )
        for packed, frame_batched in TIERS
    ]
    for tier, run in zip(TIERS[1:], runs[1:]):
        _assert_identical(runs[0], run, f"{termination}/{tier}")


def test_dfsa_adaptation_history_identical():
    """Frame-level feedback must drive the Schoute estimator through the
    exact same frame-size decisions as per-slot feedback."""
    histories = []
    for packed, frame_batched in TIERS:
        protocol = DynamicFSA(initial_frame_size=4)
        _run_tier(
            lambda: TagPopulation(31, id_bits=ID_BITS, rng=make_rng(77)),
            protocol,
            QCDDetector(8),
            "paper",
            packed,
            frame_batched,
        )
        histories.append(protocol.adaptation_history)
    assert histories[1] == histories[0]
    assert histories[2] == histories[0]


def test_detector_counters_identical():
    """classify_packed_many must advance the instrumentation counters
    exactly as per-slot classification does, for QCD and CRC-CD."""
    for det_name, counter_names in (
        ("qcd8", ("classify_calls", "function_evaluations")),
        ("crc", ("classify_calls", "crc_computations", "crc_ops_total")),
    ):
        counters = []
        for packed, frame_batched in TIERS:
            detector = DETECTORS[det_name]()
            _run_tier(
                lambda: TagPopulation(29, id_bits=ID_BITS, rng=make_rng(55)),
                FramedSlottedAloha(16),
                detector,
                "paper",
                packed,
                frame_batched,
            )
            counters.append(
                {name: getattr(detector, name) for name in counter_names}
            )
        assert counters[1] == counters[0], det_name
        assert counters[2] == counters[0], det_name
