"""dfsa_fast kernel tests: cross-validation and estimator plumbing."""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.estimators import (
    EomLeeEstimator,
    LowerBoundEstimator,
    MleEstimator,
    SchouteEstimator,
    VogtEstimator,
)
from repro.sim.fast import dfsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 150


def fast(estimator, seed=0, n=N, initial=16):
    return dfsa_fast(
        n,
        initial,
        estimator,
        QCDDetector(8),
        TimingModel(),
        np.random.default_rng(seed),
    )


class TestBasics:
    def test_completes(self):
        stats = fast(SchouteEstimator())
        assert stats.true_counts.single == N

    def test_zero_tags(self):
        stats = fast(SchouteEstimator(), n=0)
        assert stats.true_counts.total == 0
        assert stats.frames == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            fast(SchouteEstimator(), n=-1)
        with pytest.raises(ValueError):
            fast(SchouteEstimator(), initial=0)
        with pytest.raises(ValueError):
            dfsa_fast(
                5, 4, SchouteEstimator(), QCDDetector(8), TimingModel(),
                np.random.default_rng(0), min_frame_size=8, max_frame_size=4,
            )

    def test_reproducible(self):
        a, b = fast(SchouteEstimator(), seed=3), fast(SchouteEstimator(), seed=3)
        assert a.total_time == b.total_time

    @pytest.mark.parametrize(
        "estimator",
        [
            LowerBoundEstimator(),
            SchouteEstimator(),
            VogtEstimator(),
            EomLeeEstimator(),
            MleEstimator(),
        ],
        ids=lambda e: e.name,
    )
    def test_every_estimator_completes(self, estimator):
        stats = fast(estimator, seed=5)
        assert stats.true_counts.single == N


class TestCrossValidation:
    def test_matches_exact_dfsa_distributionally(self):
        rounds = 12
        exact_slots = []
        for i in range(rounds):
            pop = TagPopulation(N, rng=make_rng(200 + i))
            proto = DynamicFSA(initial_frame_size=16)
            Reader(QCDDetector(8)).run_inventory(pop.tags, proto)
            exact_slots.append(proto.slots_elapsed)
        fast_slots = [
            fast(SchouteEstimator(), seed=300 + i).true_counts.total
            for i in range(rounds)
        ]
        assert statistics.mean(fast_slots) == pytest.approx(
            statistics.mean(exact_slots), rel=0.15
        )

    def test_adaptation_beats_static_undersized(self):
        from repro.sim.fast import fsa_fast

        adaptive = fast(SchouteEstimator(), seed=7, n=600, initial=32)
        static = fsa_fast(
            600, 150, QCDDetector(8), TimingModel(), np.random.default_rng(7)
        )
        assert adaptive.true_counts.total < static.true_counts.total


class TestEstimatorQuality:
    def test_better_estimators_use_fewer_slots(self):
        """Averaged over seeds, Schoute/Eom-Lee/MLE should not be worse
        than the crude lower bound."""

        def mean_slots(estimator):
            return statistics.mean(
                fast(estimator, seed=40 + s, n=400, initial=16).true_counts.total
                for s in range(8)
            )

        lb = mean_slots(LowerBoundEstimator())
        sch = mean_slots(SchouteEstimator())
        eom = mean_slots(EomLeeEstimator())
        assert sch <= lb * 1.02
        assert eom <= lb * 1.02
