"""Energy-model tests."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.energy import EnergyBreakdown, EnergyModel, inventory_energy
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation


def run(detector, n=60, seed=4):
    pop = TagPopulation(n, id_bits=64, rng=make_rng(seed))
    reader = Reader(detector, TimingModel())
    return reader.run_inventory(pop.tags, FramedSlottedAloha(36))


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(tag_tx_uw=-1)
        with pytest.raises(ValueError):
            EnergyModel(instr_nj=-0.1)

    def test_breakdown_totals(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0)
        assert b.tag_total == 3.0
        assert b.total == 6.0


class TestAccounting:
    def test_reader_energy_proportional_to_airtime(self):
        det = QCDDetector(8)
        result = run(det)
        e = inventory_energy(result.trace, det, TimingModel())
        expected = result.stats.total_time * 100_000.0 * 1e-6
        assert e.reader_receive == pytest.approx(expected)

    def test_genie_has_zero_compute(self):
        det = IdealDetector(64)
        result = run(det)
        e = inventory_energy(result.trace, det, TimingModel())
        assert e.tag_compute == 0.0

    def test_empty_trace(self):
        e = inventory_energy([], QCDDetector(8), TimingModel())
        assert e.total == 0.0

    def test_crc_compute_uses_measured_ops(self):
        det = CRCCDDetector(id_bits=64)
        result = run(det)
        e = inventory_energy(result.trace, det, TimingModel())
        assert e.tag_compute > 0
        # ~161 ops/response vs QCD's 1: compute gap must exceed 100x.
        det_q = QCDDetector(8)
        result_q = run(det_q)
        e_q = inventory_energy(result_q.trace, det_q, TimingModel())
        per_resp_crc = e.tag_compute / max(
            1, sum(r.n_responders for r in result.trace)
        )
        per_resp_qcd = e_q.tag_compute / max(
            1, sum(r.n_responders for r in result_q.trace)
        )
        assert per_resp_crc > 100 * per_resp_qcd


class TestSchemeComparison:
    def test_qcd_saves_tag_and_reader_energy(self):
        det_c = CRCCDDetector(id_bits=64)
        res_c = run(det_c, seed=9)
        e_c = inventory_energy(res_c.trace, det_c, TimingModel())
        det_q = QCDDetector(8)
        res_q = run(det_q, seed=9)
        e_q = inventory_energy(res_q.trace, det_q, TimingModel())
        assert e_q.tag_transmit < e_c.tag_transmit
        assert e_q.tag_compute < e_c.tag_compute
        assert e_q.reader_receive < e_c.reader_receive
        assert e_q.total < 0.6 * e_c.total

    def test_guard_policy_costs_extra_tx(self):
        det = QCDDetector(8)
        plain = run(det, seed=11)
        e_plain = inventory_energy(plain.trace, det, TimingModel())
        guard_t = TimingModel(guard_id_phase=True)
        pop = TagPopulation(60, id_bits=64, rng=make_rng(11))
        guarded = Reader(det, guard_t, policy="crc_guard").run_inventory(
            pop.tags, FramedSlottedAloha(36)
        )
        e_guard = inventory_energy(guarded.trace, det, guard_t)
        assert e_guard.tag_transmit > e_plain.tag_transmit
