"""Capture-effect tests: channel, reader crediting, metrics."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.channel import Channel
from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.bt import BinaryTree
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation


class TestChannelCapture:
    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(capture_probability=1.5)
        with pytest.raises(ValueError, match="rng is required"):
            Channel(capture_probability=0.5)
        with pytest.raises(ValueError):
            Channel(capture_probability=0.5, capture_falloff=0.0, rng=make_rng(0))

    def test_no_capture_on_single(self):
        ch = Channel(capture_probability=1.0, rng=make_rng(1))
        v = BitVector(5, 8)
        assert ch.transmit([v]) == v
        assert ch.last_capture_index is None

    def test_certain_capture_returns_one_signal(self):
        ch = Channel(capture_probability=1.0, rng=make_rng(1))
        a, b = BitVector(0b0001, 4), BitVector(0b1000, 4)
        out = ch.transmit([a, b])
        assert out in (a, b)
        assert ch.last_capture_index in (0, 1)
        assert out == [a, b][ch.last_capture_index]
        assert ch.stats.captures == 1

    def test_zero_capture_always_superposes(self):
        ch = Channel()
        a, b = BitVector(0b0001, 4), BitVector(0b1000, 4)
        assert ch.transmit([a, b]) == BitVector(0b1001, 4)
        assert ch.last_capture_index is None

    def test_falloff_reduces_capture_with_m(self):
        def rate(m, trials=2000):
            ch = Channel(
                capture_probability=0.8, capture_falloff=0.5, rng=make_rng(9)
            )
            hits = 0
            sigs = [BitVector(1 << i, 16) for i in range(m)]
            for _ in range(trials):
                ch.transmit(sigs)
                hits += ch.last_capture_index is not None
            return hits / trials

        assert rate(2) > rate(4) > rate(6)

    def test_flag_cleared_between_slots(self):
        ch = Channel(capture_probability=1.0, rng=make_rng(1))
        ch.transmit([BitVector(1, 4), BitVector(2, 4)])
        assert ch.last_capture_index is not None
        ch.transmit([BitVector(1, 4)])
        assert ch.last_capture_index is None


class TestReaderWithCapture:
    def run(self, detector, protocol, n=60, p_capture=0.5, seed=3):
        pop = TagPopulation(n, id_bits=64, rng=make_rng(seed))
        channel = Channel(capture_probability=p_capture, rng=make_rng(seed + 1))
        reader = Reader(detector, channel=channel)
        result = reader.run_inventory(pop.tags, protocol)
        return pop, result

    def test_all_tags_still_identified_fsa(self):
        pop, result = self.run(QCDDetector(8), FramedSlottedAloha(32))
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert result.stats.captures > 0

    def test_all_tags_still_identified_bt(self):
        pop, result = self.run(QCDDetector(8), BinaryTree())
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_crc_cd_also_benefits(self):
        pop, result = self.run(CRCCDDetector(id_bits=64), FramedSlottedAloha(32))
        assert sorted(result.identified_ids) == sorted(pop.ids)
        assert result.stats.captures > 0

    def test_captured_slots_not_counted_as_misses(self):
        _, result = self.run(QCDDetector(8), FramedSlottedAloha(32), p_capture=0.9)
        assert result.stats.captures > 0
        assert result.stats.accuracy == pytest.approx(1.0, abs=0.02)
        assert result.stats.missed_collisions <= 1

    def test_captured_record_shape(self):
        _, result = self.run(QCDDetector(8), FramedSlottedAloha(32), p_capture=1.0)
        captured = [r for r in result.trace if r.captured]
        assert captured
        for rec in captured:
            assert rec.true_type is SlotType.COLLIDED
            assert rec.detected_type is SlotType.SINGLE
            assert rec.identified_tag is not None
            assert not rec.misdetected  # legitimate read

    def test_capture_speeds_up_inventory(self):
        pop1, with_capture = self.run(
            QCDDetector(8), FramedSlottedAloha(32), p_capture=0.9, seed=11
        )
        pop2 = TagPopulation(60, id_bits=64, rng=make_rng(11))
        without = Reader(QCDDetector(8)).run_inventory(
            pop2.tags, FramedSlottedAloha(32)
        )
        assert (
            with_capture.stats.total_time <= without.stats.total_time
        )
