"""Neighbor-discovery extension tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.wireless.neighbor import (
    expected_discovery_slots,
    optimal_tx_probability,
    run_discovery,
)


def discover(n=20, detector=None, seed=0, **kw):
    return run_discovery(
        n,
        detector or QCDDetector(8),
        TimingModel(),
        np.random.default_rng(seed),
        **kw,
    )


class TestProtocolCorrectness:
    def test_full_discovery(self):
        result = discover()
        assert result.complete
        assert (result.discovery_slot >= 0).all()

    def test_two_nodes(self):
        result = discover(n=2)
        assert result.complete
        assert result.slots >= 2  # each must hear the other separately

    def test_slot_mix_accounted(self):
        result = discover()
        assert (
            result.idle_slots + result.single_slots + result.collided_slots
            == result.slots
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            discover(n=1)
        with pytest.raises(ValueError):
            discover(tx_prob=0.0)
        with pytest.raises(ValueError):
            discover(tx_prob=1.0)

    def test_max_slots_cap(self):
        result = discover(n=50, max_slots=10)
        assert not result.complete
        assert result.slots == 10

    def test_reproducible(self):
        a, b = discover(seed=4), discover(seed=4)
        assert a.slots == b.slots
        assert a.listen_time == b.listen_time


class TestCouponCollectorTheory:
    def test_optimal_p(self):
        assert optimal_tx_probability(10) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            optimal_tx_probability(0)

    def test_expected_slots_validation(self):
        assert expected_discovery_slots(1) == 0.0
        with pytest.raises(ValueError):
            expected_discovery_slots(5, p=1.5)

    def test_prediction_tracks_simulation(self):
        """The H_{n-1}/q coupon-collector estimate predicts the mean
        per-node completion time within MC tolerance."""
        n = 15
        predicted = expected_discovery_slots(n)
        sims = [discover(n=n, seed=s).mean_discovery_slot for s in range(15)]
        measured = sum(sims) / len(sims)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_off_optimal_p_slower(self):
        n = 15
        assert expected_discovery_slots(n, p=0.5) > expected_discovery_slots(n)


class TestEnergyClaim:
    """The future-work transfer: same latency, much less listener energy."""

    def test_latency_detector_independent(self):
        slots_qcd = discover(detector=QCDDetector(8), seed=7).slots
        slots_crc = discover(detector=CRCCDDetector(id_bits=64), seed=7).slots
        assert slots_qcd == slots_crc  # identical contention process

    def test_qcd_listener_energy_much_lower(self):
        qcd = discover(detector=QCDDetector(8), seed=9)
        crc = discover(detector=CRCCDDetector(id_bits=64), seed=9)
        assert qcd.listen_time < 0.5 * crc.listen_time

    def test_garbage_receptions_rare_at_8bit(self):
        result = discover(n=30, seed=11)
        assert result.garbage_receptions <= result.collided_slots

    def test_weak_strength_wastes_energy(self):
        weak = discover(detector=QCDDetector(1), seed=13, n=30)
        strong = discover(detector=QCDDetector(8), seed=13, n=30)
        assert weak.garbage_receptions > strong.garbage_receptions

    def test_ideal_detector_floor(self):
        """The genie (bare-ID framing) bounds the listen time from below
        for single-heavy mixes but pays full price on idle/collided --
        QCD's variable slots beat even that."""
        qcd = discover(detector=QCDDetector(8), seed=15, n=25)
        genie = discover(detector=IdealDetector(64), seed=15, n=25)
        assert qcd.listen_time < genie.listen_time
