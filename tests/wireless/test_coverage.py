"""Sensor-field coverage/connectivity tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.wireless.coverage import SensorField, run_field_discovery


def dense_field(seed=0, n=30):
    # 30 nodes, 40x40 m, 15 m range: connected with high probability.
    return SensorField.random(n, 40.0, 40.0, 15.0, np.random.default_rng(seed))


def discover(field, detector=None, seed=1, **kw):
    return run_field_discovery(
        field,
        detector or QCDDetector(8),
        TimingModel(),
        np.random.default_rng(seed),
        **kw,
    )


class TestField:
    def test_random_in_bounds(self):
        f = dense_field()
        assert ((f.positions >= 0) & (f.positions <= 40)).all()

    def test_adjacency_symmetric_no_loops(self):
        adj = dense_field().adjacency()
        assert (adj == adj.T).all()
        assert not adj.diagonal().any()

    def test_graph_matches_adjacency(self):
        f = dense_field()
        assert f.graph().number_of_edges() == int(f.adjacency().sum()) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorField(np.zeros((3, 3)), 1.0)
        with pytest.raises(ValueError):
            SensorField(np.zeros((3, 2)), 0.0)


class TestDiscovery:
    def test_complete_discovery(self):
        f = dense_field()
        result = discover(f)
        assert result.complete
        assert result.discovered_fraction == 1.0

    def test_connectivity_verified_when_field_connected(self):
        f = dense_field()
        if not f.is_connected():  # pragma: no cover - improbable
            pytest.skip("random field not connected")
        result = discover(f)
        assert result.connectivity_verified()

    def test_connected_stop_is_earlier(self):
        f = dense_field(seed=3)
        full = discover(f, seed=5, until="complete")
        early = discover(f, seed=5, until="connected")
        assert early.slots <= full.slots
        assert early.connectivity_verified()

    def test_validation(self):
        f = dense_field()
        with pytest.raises(ValueError):
            discover(f, until="forever")
        with pytest.raises(ValueError):
            discover(f, tx_prob=0.0)
        with pytest.raises(ValueError):
            run_field_discovery(
                SensorField(np.zeros((1, 2)), 1.0),
                QCDDetector(8),
                TimingModel(),
                np.random.default_rng(0),
            )

    def test_max_slots_cap(self):
        f = dense_field()
        result = discover(f, max_slots=5)
        assert result.slots == 5

    def test_discovered_edges_are_real(self):
        f = dense_field(seed=7)
        result = discover(f, seed=8, max_slots=200)
        adj = f.adjacency()
        heard = np.nonzero(result.discovered)
        for i, j in zip(*heard):
            assert adj[i, j]

    def test_isolated_node_leaves_graph_disconnected(self):
        # Two clusters far apart can never verify connectivity.
        pos = np.array(
            [[0.0, 0.0], [1.0, 0.0], [100.0, 0.0], [101.0, 0.0]]
        )
        f = SensorField(pos, radio_range=5.0)
        result = discover(f, seed=2, until="complete")
        assert result.complete  # all *existing* links heard
        assert not result.connectivity_verified()


class TestEnergyTransfer:
    def test_qcd_listener_energy_lower(self):
        f = dense_field(seed=11)
        qcd = discover(f, QCDDetector(8), seed=12)
        crc = discover(f, CRCCDDetector(id_bits=64), seed=12)
        assert qcd.slots == crc.slots  # same contention process
        assert qcd.listen_time < 0.55 * crc.listen_time

    def test_weak_strength_garbage(self):
        f = dense_field(seed=13)
        weak = discover(f, QCDDetector(1), seed=14, max_slots=400)
        strong = discover(f, QCDDetector(16), seed=14, max_slots=400)
        assert weak.garbage_receptions > strong.garbage_receptions
