"""The lazy package loader and the module entry point."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro.verify as verify

REPO = Path(__file__).parents[2]


class TestLazyLoading:
    def test_submodules_resolve(self):
        for name in verify._SUBMODULES:
            mod = getattr(verify, name)
            assert mod.__name__ == f"repro.verify.{name}"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            verify.nonexistent

    def test_dir_lists_submodules(self):
        assert set(verify._SUBMODULES) <= set(dir(verify))

    def test_runtime_import_does_not_pull_hypothesis(self):
        """The reader hooks import repro.verify.invariants at load; that
        must not drag the dev-only hypothesis dependency into runtime."""
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; import repro.sim.reader; "
                "print('hypothesis' in sys.modules)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(REPO),
        )
        assert out.stdout.strip() == "False"


class TestModuleEntryPoint:
    def test_python_m_repro_verify_list(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.verify", "--list"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(REPO),
        )
        assert out.returncode == 0
        assert "invariant-sweep" in out.stdout
