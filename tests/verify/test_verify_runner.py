"""Unit tests for the verification sweep driver."""

from __future__ import annotations

import math

import pytest

from repro.verify.comparisons import check_exact
from repro.verify.oracles import Oracle, OracleReport
from repro.verify.runner import (
    FULL_ROUNDS,
    QUICK_ROUNDS,
    VerificationReport,
    VerificationRunner,
    _fmt,
    report_rows,
)


def counting_oracle(calls, passes=True):
    def fn(ctx):
        calls.append(ctx.rounds)
        return (check_exact("unit", 1.0, 1.0 if passes else 2.0),)

    return Oracle(name="unit-stub", kind="invariant", description="stub", fn=fn)


class TestConstruction:
    def test_default_depths(self):
        with VerificationRunner() as r:
            assert r.rounds == FULL_ROUNDS
        with VerificationRunner(quick=True) as r:
            assert r.rounds == QUICK_ROUNDS

    def test_explicit_rounds_beat_quick(self):
        with VerificationRunner(rounds=5, quick=True) as r:
            assert r.rounds == 5

    def test_too_few_rounds_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            VerificationRunner(rounds=1)


class TestCaching:
    def test_cache_hit_skips_recompute(self, tmp_path):
        calls: list[int] = []
        orc = counting_oracle(calls)
        with VerificationRunner(rounds=2, cache_dir=tmp_path) as runner:
            first = runner.run_oracle(orc)
            second = runner.run_oracle(orc)
        assert calls == [2]  # second call served from disk
        assert first == second

    def test_cache_shared_across_runners(self, tmp_path):
        calls: list[int] = []
        orc = counting_oracle(calls)
        with VerificationRunner(rounds=2, cache_dir=tmp_path) as runner:
            runner.run_oracle(orc)
        with VerificationRunner(rounds=2, cache_dir=tmp_path) as runner:
            runner.run_oracle(orc)
        assert calls == [2]

    def test_rounds_key_the_cache(self, tmp_path):
        calls: list[int] = []
        orc = counting_oracle(calls)
        with VerificationRunner(rounds=2, cache_dir=tmp_path) as runner:
            runner.run_oracle(orc)
        with VerificationRunner(rounds=3, cache_dir=tmp_path) as runner:
            runner.run_oracle(orc)
        assert calls == [2, 3]

    def test_no_cache_dir_always_recomputes(self):
        calls: list[int] = []
        orc = counting_oracle(calls)
        with VerificationRunner(rounds=2) as runner:
            runner.run_oracle(orc)
            runner.run_oracle(orc)
        assert calls == [2, 2]

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        calls: list[int] = []
        orc = counting_oracle(calls)
        with VerificationRunner(rounds=2, cache_dir=tmp_path) as runner:
            runner._disk.store(runner._cache_params(orc), {"garbage": True})
            report = runner.run_oracle(orc)
        assert calls == [2]
        assert report.passed


class TestReports:
    def _report(self, *passes):
        return VerificationReport(
            reports=tuple(
                OracleReport(
                    f"o{i}", "invariant", (check_exact("c", 1, 1 if p else 2),)
                )
                for i, p in enumerate(passes)
            ),
            rounds=2,
            seed=1,
            quick=False,
        )

    def test_passed_and_failures(self):
        rep = self._report(True, False, True)
        assert not rep.passed
        assert [r.oracle for r in rep.failures] == ["o1"]

    def test_to_dict_shape(self):
        doc = self._report(True).to_dict()
        assert doc["passed"] is True
        assert doc["oracles"][0]["checks"][0]["statistic"] == "exact"

    def test_report_rows(self):
        rows = report_rows(self._report(True, False))
        assert [r["verdict"] for r in rows] == ["ok", "FAIL"]
        assert rows[0]["oracle"] == "o0"
        assert rows[0]["observed"] == "1"


class TestFmt:
    def test_nan(self):
        assert _fmt(math.nan) == "nan"

    def test_integral(self):
        assert _fmt(68.0) == "68"

    def test_general(self):
        assert _fmt(0.123456) == "0.1235"
