"""Unit tests for the engine invariant checker."""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass

import pytest

from repro import obs
from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.verify import invariants
from repro.verify.invariants import (
    InvariantViolation,
    Violation,
    check_inventory,
    check_slot,
    checking,
)


@pytest.fixture(autouse=True)
def clean_state():
    invariants.disable()
    invariants.reset()
    obs.disable()
    obs.reset()
    yield
    invariants.disable()
    invariants.reset()
    obs.disable()
    obs.reset()


@dataclass
class FakeRecord:
    """Duck-typed stand-in for SlotRecord (the checker never imports
    repro.sim, so any record-shaped object works)."""

    index: int = 0
    n_responders: int = 1
    true_type: SlotType = SlotType.SINGLE
    detected_type: SlotType = SlotType.SINGLE
    duration: float = 0.0
    end_time: float = 0.0


def good_record(detector, timing, **overrides) -> FakeRecord:
    rec = FakeRecord()
    rec.duration = timing.slot_duration(detector, rec.detected_type)
    rec.end_time = rec.duration
    for k, v in overrides.items():
        setattr(rec, k, v)
    return rec


class TestSwitchboard:
    def test_off_by_default(self):
        assert not invariants.is_enabled()

    def test_enable_disable(self):
        invariants.enable(strict=False)
        assert invariants.is_enabled()
        assert not invariants.STATE.strict
        invariants.disable()
        assert not invariants.is_enabled()

    def test_reset_clears_log_only(self):
        invariants.enable(strict=False)
        invariants._report("x", "boom")
        assert invariants.STATE.violations
        invariants.reset()
        assert invariants.STATE.violations == []
        assert invariants.is_enabled()

    def test_checking_restores_prior_state(self):
        invariants.enable(strict=False)
        with checking(strict=True):
            assert invariants.STATE.strict
        assert invariants.is_enabled()
        assert not invariants.STATE.strict

    def test_checking_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with checking():
                raise RuntimeError("boom")
        assert not invariants.is_enabled()

    def test_env_flag_strict(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.verify.invariants import STATE; "
                "print(STATE.enabled, STATE.strict)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_VERIFY_INVARIANTS": "1"},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
        )
        assert out.stdout.split() == ["True", "True"]

    def test_env_flag_collect(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.verify.invariants import STATE; "
                "print(STATE.enabled, STATE.strict)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_VERIFY_INVARIANTS": "collect"},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
        )
        assert out.stdout.split() == ["True", "False"]


class TestModes:
    def test_strict_raises(self):
        invariants.enable(strict=True)
        with pytest.raises(InvariantViolation, match="boom"):
            invariants._report("test", "boom")

    def test_collect_records(self):
        invariants.enable(strict=False)
        invariants._report("test", "boom")
        assert invariants.STATE.violations == [Violation("test", "boom")]

    def test_obs_counter_incremented(self):
        from repro.obs import instruments as inst

        obs.enable()
        invariants.enable(strict=False)
        invariants._report("slot_duration", "off by one")
        invariants._report("slot_duration", "off by two")
        counter = obs.STATE.registry.get(inst.INVARIANT_VIOLATIONS)
        assert counter.labels(check="slot_duration").value == 2

    def test_no_obs_write_when_obs_disabled(self):
        from repro.obs import instruments as inst

        invariants.enable(strict=False)
        invariants._report("test", "boom")
        assert obs.STATE.registry.get(inst.INVARIANT_VIOLATIONS) is None


class TestCheckSlot:
    def setup_method(self):
        self.detector = QCDDetector(8)
        self.timing = TimingModel()

    def test_clean_slot(self):
        invariants.enable(strict=True)
        rec = good_record(self.detector, self.timing)
        check_slot(rec, self.detector, self.timing, None)
        assert invariants.STATE.violations == []

    def test_true_type_mismatch(self):
        invariants.enable(strict=False)
        rec = good_record(
            self.detector, self.timing, n_responders=3, true_type=SlotType.SINGLE
        )
        check_slot(rec, self.detector, self.timing, None)
        assert [v.check for v in invariants.STATE.violations] == [
            "slot_true_type"
        ]

    def test_duration_mismatch(self):
        invariants.enable(strict=False)
        rec = good_record(self.detector, self.timing, duration=1.0)
        check_slot(rec, self.detector, self.timing, None)
        assert [v.check for v in invariants.STATE.violations] == [
            "slot_duration"
        ]

    def test_inconsistent_qcd_preamble(self):
        """A single verdict over an all-ones signal: r = c = 1^8 fails
        c == f(r), the checker must flag it."""
        from repro.bits.bitvec import BitVector

        invariants.enable(strict=False)
        rec = good_record(self.detector, self.timing)
        check_slot(rec, self.detector, self.timing, BitVector.ones(16))
        assert [v.check for v in invariants.STATE.violations] == [
            "qcd_preamble"
        ]

    def test_consistent_qcd_preamble_clean(self):
        from repro.bits.bitvec import BitVector

        invariants.enable(strict=True)
        rec = good_record(self.detector, self.timing)
        signal = self.detector.codec.encode(BitVector(0x42, 8))
        check_slot(rec, self.detector, self.timing, signal)
        assert invariants.STATE.violations == []


class TestCheckInventory:
    def setup_method(self):
        self.detector = QCDDetector(8)
        self.timing = TimingModel()

    def _trace(self, n=3):
        out = []
        t = 0.0
        for i in range(n):
            rec = good_record(self.detector, self.timing, index=i)
            t += rec.duration
            rec.end_time = t
            out.append(rec)
        return out

    def _run(self, trace=None, pop=(1, 2, 3), ident=(1, 2, 3), lost=(), **kw):
        invariants.enable(strict=False)
        check_inventory(
            self._trace() if trace is None else trace,
            list(pop),
            list(ident),
            list(lost),
            **kw,
        )
        return [v.check for v in invariants.STATE.violations]

    def test_clean(self):
        assert self._run(complete=True) == []

    def test_duplicate_identified(self):
        assert "identified_unique" in self._run(ident=(1, 1, 2))

    def test_identified_outside_population(self):
        assert "identified_subset" in self._run(ident=(1, 2, 99))

    def test_lost_and_identified_overlap(self):
        assert "lost_disjoint" in self._run(ident=(1, 2), lost=(2,))

    def test_incomplete_inventory_flagged_only_when_complete(self):
        assert self._run(ident=(1, 2)) == []
        assert "inventory_complete" in self._run(ident=(1, 2), complete=True)

    def test_negative_duration(self):
        trace = self._trace()
        trace[1].duration = -1.0
        assert "clock_monotone" in self._run(trace=trace)

    def test_non_monotone_clock(self):
        trace = self._trace()
        trace[2].end_time = 0.0
        assert "clock_monotone" in self._run(trace=trace)

    def test_partition_violation(self):
        trace = self._trace()
        trace[0].true_type = None  # not a known slot type
        assert "slot_partition" in self._run(trace=trace)


class TestEndToEnd:
    def test_reader_run_is_clean_under_strict_checks(self):
        from repro.bits.rng import make_rng
        from repro.protocols.fsa import FramedSlottedAloha
        from repro.sim.reader import Reader
        from repro.tags.population import TagPopulation

        pop = TagPopulation(20, id_bits=64, rng=make_rng(9))
        with checking(strict=True) as state:
            Reader(QCDDetector(8)).run_inventory(
                pop.tags, FramedSlottedAloha(12)
            )
        assert state.violations == []

    def test_engine_run_is_clean_under_strict_checks(self):
        from repro.bits.rng import make_rng
        from repro.protocols.fsa import FramedSlottedAloha
        from repro.sim.engine import MobileInventoryEngine
        from repro.sim.reader import Reader
        from repro.tags.mobility import poisson_arrivals
        from repro.tags.population import TagPopulation

        pop = TagPopulation(10, id_bits=64, rng=make_rng(4))
        movers = TagPopulation(8, id_bits=64, rng=make_rng(6))
        schedule = poisson_arrivals(
            list(movers.tags), rate=0.002, dwell_mean=4000.0, rng=make_rng(5)
        )
        with checking(strict=True) as state:
            MobileInventoryEngine(Reader(QCDDetector(8))).run(
                FramedSlottedAloha(16), schedule, initial_tags=pop.tags
            )
        assert state.violations == []
