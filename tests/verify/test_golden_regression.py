"""Golden-file regression: slot-type distributions for frozen seeds.

Pins the exact reader and both fast kernels at one QCD-4 grid point
(n = 30, ℱ = 16, seed 2010).  Any change to the RNG consumption order,
the channel, the detector, or the kernels shifts these counts and fails
the exact-equality comparison against ``tests/data``.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/verify/test_golden_regression.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.fast import bt_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "data"
    / "golden_slot_distribution.json"
)

N_TAGS = 30
FRAME = 16
SEED = 2010
STRENGTH = 4  # QCD-4: misses are common enough to pin the policy paths


def _counts(stats) -> dict:
    return {
        "true": {
            "idle": stats.true_counts.idle,
            "single": stats.true_counts.single,
            "collided": stats.true_counts.collided,
        },
        "detected": {
            "idle": stats.detected_counts.idle,
            "single": stats.detected_counts.single,
            "collided": stats.detected_counts.collided,
        },
        "total_time": stats.total_time,
        "missed_collisions": stats.missed_collisions,
    }


def _population():
    return TagPopulation(N_TAGS, id_bits=64, rng=make_rng(SEED))


def generate() -> dict:
    """Recompute the pinned distributions (the golden file's source)."""
    timing = TimingModel()
    out = {
        "_config": {
            "n_tags": N_TAGS,
            "frame_size": FRAME,
            "seed": SEED,
            "scheme": f"qcd-{STRENGTH}",
        }
    }

    res = Reader(QCDDetector(STRENGTH), timing).run_inventory(
        _population().tags, FramedSlottedAloha(FRAME)
    )
    out["reader-fsa"] = _counts(res.stats)

    res = Reader(QCDDetector(STRENGTH), timing).run_inventory(
        _population().tags, BinaryTree()
    )
    out["reader-bt"] = _counts(res.stats)

    # The Reader's three tiers pinned separately: the object path, the
    # per-slot uint64 path, and the frame-batched path must all land on
    # these exact counts (the tier entries are identical by construction
    # -- the equality itself is part of what the golden file pins).
    for label, packed, frame_batched in (
        ("object", False, True),
        ("packed", True, False),
        ("batched", True, True),
    ):
        res = Reader(
            QCDDetector(STRENGTH), timing, packed=packed,
            frame_batched=frame_batched,
        ).run_inventory(_population().tags, FramedSlottedAloha(FRAME))
        out[f"reader-fsa-{label}"] = _counts(res.stats)
        res = Reader(
            QCDDetector(STRENGTH), timing, packed=packed,
            frame_batched=frame_batched,
        ).run_inventory(
            _population().tags, DynamicFSA(initial_frame_size=FRAME)
        )
        out[f"reader-dfsa-{label}"] = _counts(res.stats)

    out["fsa-fast"] = _counts(
        fsa_fast(
            N_TAGS,
            FRAME,
            QCDDetector(STRENGTH),
            timing,
            np.random.default_rng(SEED),
        )
    )
    out["bt-fast"] = _counts(
        bt_fast(N_TAGS, QCDDetector(STRENGTH), timing, np.random.default_rng(SEED))
    )
    return out


class TestGoldenDistribution:
    def test_matches_golden_file_exactly(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert generate() == golden

    def test_golden_file_is_self_consistent(self):
        """Sanity on the pinned numbers themselves: totals partition and
        every tag won exactly one true single under both backends."""
        golden = json.loads(GOLDEN_PATH.read_text())
        keys = ("reader-fsa", "reader-bt", "fsa-fast", "bt-fast") + tuple(
            f"reader-{proto}-{tier}"
            for proto in ("fsa", "dfsa")
            for tier in ("object", "packed", "batched")
        )
        for key in keys:
            entry = golden[key]
            assert entry["true"]["single"] == N_TAGS
            assert sum(entry["true"].values()) == sum(entry["detected"].values())

    def test_golden_reader_tiers_agree(self):
        """The pinned per-tier entries are mutually identical: the three
        Reader paths may never drift apart, per protocol."""
        golden = json.loads(GOLDEN_PATH.read_text())
        for proto in ("fsa", "dfsa"):
            object_entry = golden[f"reader-{proto}-object"]
            assert golden[f"reader-{proto}-packed"] == object_entry
            assert golden[f"reader-{proto}-batched"] == object_entry


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(generate(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
