"""The strategy library, property-tested against its own contracts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bits.bitvec import BitVector
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation
from repro.verify import strategies as vs


class TestBitvectors:
    @settings(max_examples=30)
    @given(vs.bitvectors(max_length=16))
    def test_length_band(self, v):
        assert isinstance(v, BitVector)
        assert 0 <= v.length <= 16

    @settings(max_examples=30)
    @given(vs.sized_bitvectors(8))
    def test_sized(self, v):
        assert v.length == 8

    @settings(max_examples=30)
    @given(vs.data_vectors(max_bits=12))
    def test_data_vectors_nonempty(self, v):
        assert 1 <= v.length <= 12

    def test_sized_rejects_negative(self):
        with pytest.raises(ValueError):
            vs.sized_bitvectors(-1)


class TestPreambleValues:
    @settings(max_examples=30)
    @given(vs.preamble_values(4))
    def test_band(self, r):
        assert 1 <= r <= 15

    @settings(max_examples=20)
    @given(vs.distinct_preamble_values(4, min_size=2, max_size=6))
    def test_distinct(self, values):
        assert len(set(values)) == len(values)
        assert all(1 <= v <= 15 for v in values)

    def test_rejects_zero_strength(self):
        with pytest.raises(ValueError):
            vs.preamble_values(0)


class TestTagIds:
    @settings(max_examples=30)
    @given(vs.tag_ids(16))
    def test_band(self, tag_id):
        assert 0 <= tag_id < (1 << 16)

    @settings(max_examples=20)
    @given(vs.distinct_tag_ids(16, min_size=2, max_size=4))
    def test_distinct(self, ids):
        assert len(set(ids)) == len(ids)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            vs.tag_ids(0)


class TestPopulations:
    @settings(max_examples=20, deadline=None)
    @given(vs.populations(max_size=10))
    def test_shape(self, pop):
        assert isinstance(pop, TagPopulation)
        assert 0 <= len(pop) <= 10
        assert len(set(pop.ids)) == len(pop)


class TestFrames:
    def test_adequate_frame_floor(self):
        assert vs.adequate_frame(0) == 2
        assert vs.adequate_frame(1) == 2

    def test_adequate_frame_scales(self):
        # The termination condition the docstring promises: n/F <= 2.
        for n in (0, 1, 2, 7, 40, 101):
            assert n / vs.adequate_frame(n) <= 2

    def test_slack_adds(self):
        assert vs.adequate_frame(10, slack=5) == vs.adequate_frame(10) + 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            vs.adequate_frame(-1)
        with pytest.raises(ValueError):
            vs.adequate_frame(1, slack=-1)


class TestDetectors:
    @settings(max_examples=30)
    @given(vs.detectors())
    def test_default_mix(self, det):
        assert isinstance(det, (QCDDetector, CRCCDDetector))
        if isinstance(det, QCDDetector):
            assert det.strength in vs.STRENGTHS

    @settings(max_examples=20)
    @given(vs.detectors(include_crc=False, include_ideal=True))
    def test_ideal_opt_in(self, det):
        from repro.core.ideal import IdealDetector

        assert isinstance(det, (QCDDetector, IdealDetector))

    @settings(max_examples=10)
    @given(vs.detectors(strengths=(8,), include_crc=False))
    def test_fresh_instances(self, det):
        """Stateful instrumentation counters demand a new object per
        example."""
        assert det.classify_calls == 0
        det.classify(None)


class TestTimingModels:
    @settings(max_examples=20)
    @given(vs.timing_models())
    def test_shape(self, timing):
        assert isinstance(timing, TimingModel)
        assert timing.tau in (0.5, 1.0, 2.0)
        assert timing.id_bits in (16, 64, 96)
