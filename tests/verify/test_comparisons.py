"""Unit tests for the comparison statistics."""

from __future__ import annotations

import json
import math

import pytest

from repro.verify.comparisons import (
    Check,
    check_absolute,
    check_exact,
    check_ks,
    check_lower_bound,
    check_mean_z,
    check_relative,
)


class TestExact:
    def test_pass(self):
        c = check_exact("n", 5, 5)
        assert c.passed and c.statistic == "exact" and c.tolerance == 0.0

    def test_fail(self):
        assert not check_exact("n", 5, 6).passed


class TestRelative:
    def test_within_band(self):
        assert check_relative("t", 109.0, 100.0, 0.10).passed

    def test_outside_band(self):
        assert not check_relative("t", 111.0, 100.0, 0.10).passed

    def test_boundary_inclusive(self):
        assert check_relative("t", 110.0, 100.0, 0.10).passed

    def test_zero_reference_degenerates_to_absolute(self):
        """'Expected zero' still admits MC jitter up to the tolerance."""
        assert check_relative("z", 0.05, 0.0, 0.1).passed
        assert not check_relative("z", 0.2, 0.0, 0.1).passed


class TestAbsolute:
    def test_band(self):
        assert check_absolute("a", 0.52, 0.50, 0.05).passed
        assert not check_absolute("a", 0.56, 0.50, 0.05).passed


class TestLowerBound:
    def test_exceeding_the_bound_is_fine(self):
        """Theory lower bounds: measured may exceed by any amount."""
        assert check_lower_bound("ei", 10.0, 0.5).passed

    def test_slack(self):
        assert check_lower_bound("ei", 0.48, 0.5, slack=0.02).passed
        assert not check_lower_bound("ei", 0.47, 0.5, slack=0.02).passed


class TestKS:
    def test_same_sample_passes(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0] * 4
        c = check_ks("ks", sample, list(sample))
        assert c.passed and c.observed == 1.0

    def test_disjoint_distributions_fail(self):
        a = [0.0] * 30
        b = [100.0] * 30
        assert not check_ks("ks", a, b).passed


class TestMeanZ:
    def test_identical_constant_samples(self):
        """se = 0 with equal means: z defined as 0, passes."""
        c = check_mean_z("z", [5.0, 5.0], [5.0, 5.0])
        assert c.passed and c.observed == 0.0

    def test_different_constant_samples(self):
        """se = 0 with unequal means: z = inf, fails."""
        c = check_mean_z("z", [5.0, 5.0], [6.0, 6.0])
        assert not c.passed and math.isinf(c.observed)

    def test_close_means_pass(self):
        a = [10.0, 11.0, 9.0, 10.5, 9.5]
        b = [10.2, 10.8, 9.4, 10.1, 9.9]
        assert check_mean_z("z", a, b).passed

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            check_mean_z("z", [], [1.0])


class TestSerialization:
    def test_roundtrip(self):
        c = check_relative("t", 1.05, 1.0, 0.1)
        assert Check.from_dict(c.to_dict()) == c

    def test_nan_roundtrips_through_json_null(self):
        """The result cache stores RFC-8259-clean JSON (NaN -> null);
        from_dict must restore the NaN."""
        c = Check("d", "abs", math.nan, 1.0, 0.1, False)
        doc = json.loads(
            json.dumps(
                {**c.to_dict(), "observed": None}, allow_nan=False
            )
        )
        back = Check.from_dict(doc)
        assert math.isnan(back.observed)
        assert back.reference == 1.0
