"""Unit tests for the oracle registry and execution context."""

from __future__ import annotations

import pytest

from repro.core.timing import TimingModel
from repro.experiments.parallel import make_executor
from repro.protocols.fsa import FramedSlottedAloha
from repro.core.qcd import QCDDetector
from repro.verify.comparisons import check_exact
from repro.verify.oracles import (
    ORACLES,
    Oracle,
    OracleContext,
    OracleReport,
    all_oracles,
    get,
    oracle,
)

EXPECTED = {
    "fsa-kernel-vs-reader": "kernel-reader",
    "bt-kernel-vs-reader": "kernel-reader",
    "batch-vs-streamed": "kernel-kernel",
    "batch-reader": "reader-reader",
    "fsa-frame-vs-theory": "sim-theory",
    "bt-slots-vs-theory": "sim-theory",
    "fsa-ei-vs-theory": "sim-theory",
    "bt-ei-vs-theory": "sim-theory",
    "qcd-accuracy-vs-theory": "sim-theory",
    "invariant-sweep": "invariant",
}


def make_context(rounds=3, seed=2010):
    return OracleContext(
        rounds=rounds,
        seed=seed,
        timing=TimingModel(),
        executor=make_executor(1),
    )


class TestRegistry:
    def test_issue_coverage(self):
        """The floor the acceptance criteria demand: two kernel-reader
        pairs, at least three sim-theory pairs, one invariant sweep."""
        kinds = {name: o.kind for name, o in ORACLES.items()}
        assert kinds == EXPECTED
        by_kind = list(kinds.values())
        assert by_kind.count("kernel-reader") == 2
        assert by_kind.count("kernel-kernel") == 1
        assert by_kind.count("reader-reader") == 1
        assert by_kind.count("sim-theory") >= 3
        assert by_kind.count("invariant") == 1

    def test_all_oracles_in_registration_order(self):
        assert [o.name for o in all_oracles()] == list(EXPECTED)

    def test_get_known(self):
        o = get("invariant-sweep")
        assert isinstance(o, Oracle) and o.kind == "invariant"

    def test_get_unknown_names_the_registry(self):
        with pytest.raises(KeyError, match="fsa-kernel-vs-reader"):
            get("no-such-oracle")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @oracle("invariant-sweep", "invariant", "dup")
            def dup(ctx):  # pragma: no cover - never runs
                return ()

    def test_descriptions_nonempty(self):
        assert all(o.description for o in all_oracles())


class TestOracleReport:
    def test_passed_aggregates_checks(self):
        ok = check_exact("a", 1, 1)
        bad = check_exact("b", 1, 2)
        assert OracleReport("x", "invariant", (ok,)).passed
        assert not OracleReport("x", "invariant", (ok, bad)).passed

    def test_dict_roundtrip(self):
        rep = OracleReport(
            "x", "sim-theory", (check_exact("a", 1, 1), check_exact("b", 2, 2))
        )
        assert OracleReport.from_dict(rep.to_dict()) == rep


class TestOracleContext:
    def test_kernel_rounds_deterministic(self):
        a = make_context().kernel_rounds("fsa", "qcd-8", 40, 24)
        b = make_context().kernel_rounds("fsa", "qcd-8", 40, 24)
        assert [s.total_time for s in a] == [s.total_time for s in b]
        assert len(a) == 3

    def test_kernel_rounds_scheme_enters_stream(self):
        a = make_context().kernel_rounds("fsa", "qcd-8", 40, 24)
        b = make_context().kernel_rounds("fsa", "qcd-16", 40, 24)
        assert [s.true_counts.total for s in a] != [
            s.true_counts.total for s in b
        ]

    def test_reader_rounds_deterministic(self):
        ctx = make_context(rounds=2)
        kw = dict(
            protocol_factory=lambda: FramedSlottedAloha(24),
            detector_factory=lambda: QCDDetector(8),
            n_tags=15,
            salt="unit",
        )
        a = ctx.reader_rounds(**kw)
        b = ctx.reader_rounds(**kw)
        assert [s.total_time for s in a] == [s.total_time for s in b]

    def test_reader_rounds_salt_changes_stream(self):
        ctx = make_context(rounds=2)

        def run(salt):
            return ctx.reader_rounds(
                lambda: FramedSlottedAloha(24),
                lambda: QCDDetector(8),
                15,
                salt,
            )

        assert [s.total_time for s in run("a")] != [
            s.total_time for s in run("b")
        ]


class TestInvariantSweep:
    def test_sweep_is_clean(self):
        """The full protocol × detector × policy grid under strict-off
        collection: zero violations, every config executed."""
        report = get("invariant-sweep").run(make_context(rounds=2))
        assert report.passed
        by_name = {c.name: c for c in report.checks}
        assert by_name["violations"].observed == 0.0
        assert by_name["configs_run"].passed
