"""Unit and end-to-end tests for the ``repro-verify`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.verify import cli
from repro.verify.comparisons import check_exact
from repro.verify.oracles import ORACLES, Oracle


def stub(name, passes):
    return Oracle(
        name=name,
        kind="invariant",
        description="stub",
        fn=lambda ctx: (check_exact("c", 1.0, 1.0 if passes else 2.0),),
    )


@pytest.fixture
def stub_registry(monkeypatch):
    """Replace the registry with two cheap stubs (one green, one red)."""
    fakes = {"green": stub("green", True), "red": stub("red", False)}
    monkeypatch.setattr("repro.verify.oracles.ORACLES", fakes)
    return fakes


class TestParser:
    def test_defaults(self):
        args = cli.build_parser().parse_args([])
        assert not args.quick
        assert args.rounds is None
        assert args.seed == 2010
        assert args.workers == 1
        assert args.oracles is None

    def test_oracle_repeatable(self):
        args = cli.build_parser().parse_args(
            ["--oracle", "a", "--oracle", "b"]
        )
        assert args.oracles == ["a", "b"]


class TestList:
    def test_lists_registry_and_exits_zero(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out


class TestStubbedSweeps:
    def test_green_sweep_exits_zero(self, stub_registry, capsys):
        assert cli.main(["--rounds", "2", "--oracle", "green"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_red_sweep_exits_nonzero(self, stub_registry, capsys):
        assert cli.main(["--rounds", "2"]) == 1
        captured = capsys.readouterr()
        assert "FAIL: tolerance violations in: red" in captured.err
        assert "ok" in captured.out and "FAIL" in captured.out

    def test_unknown_oracle_raises(self, stub_registry):
        with pytest.raises(KeyError, match="green"):
            cli.main(["--rounds", "2", "--oracle", "nope"])

    def test_report_file(self, stub_registry, tmp_path):
        out = tmp_path / "verdict.json"
        assert cli.main(["--rounds", "2", "--report", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["passed"] is False
        assert {o["oracle"] for o in doc["oracles"]} == {"green", "red"}


class TestRealSweep:
    """The acceptance-criteria path: the full registry at quick depth."""

    def test_quick_sweep_all_oracles_green(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        code = cli.main(
            [
                "--quick",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--report",
                str(report_file),
            ]
        )
        assert code == 0
        doc = json.loads(report_file.read_text())
        assert doc["passed"] is True
        assert doc["quick"] is True
        assert len(doc["oracles"]) == len(ORACLES) >= 6
        kinds = [o["kind"] for o in doc["oracles"]]
        assert kinds.count("kernel-reader") == 2
        assert kinds.count("sim-theory") >= 3
        assert kinds.count("invariant") == 1

        # Warm-cache rerun: same verdict, served from disk.
        assert (
            cli.main(["--quick", "--cache-dir", str(tmp_path / "cache")]) == 0
        )
