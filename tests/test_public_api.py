"""Public API surface tests: the README / docstring quick starts must work
exactly as written."""

from __future__ import annotations

import importlib

import repro


class TestApiSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for pkg in (
            "bits",
            "core",
            "tags",
            "protocols",
            "sim",
            "analysis",
            "security",
            "experiments",
            "obs",
        ):
            mod = importlib.import_module(f"repro.{pkg}")
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"repro.{pkg}.{name}"


class TestQuickstart:
    def test_package_docstring_example(self):
        from repro import (
            FramedSlottedAloha,
            QCDDetector,
            Reader,
            TagPopulation,
            TimingModel,
            make_rng,
        )

        rng = make_rng(42)
        tags = TagPopulation(50, id_bits=64, rng=rng)
        reader = Reader(QCDDetector(strength=8), TimingModel())
        result = reader.run_inventory(
            tags.tags, FramedSlottedAloha(frame_size=30)
        )
        assert result.stats.true_counts.single == 50

    def test_every_public_class_has_docstring(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
