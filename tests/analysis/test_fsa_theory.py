"""Lemma 1 tests: FSA throughput theory."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fsa_theory import (
    expected_throughput,
    expected_total_slots,
    max_throughput,
    optimal_frame_size,
)


class TestLemma1:
    def test_max_throughput_is_1_over_e(self):
        assert max_throughput() == pytest.approx(1 / math.e)
        assert max_throughput() == pytest.approx(0.37, abs=0.005)

    def test_optimal_frame_equals_n(self):
        assert optimal_frame_size(100) == 100

    def test_throughput_peaks_at_f_equals_n(self):
        n = 200
        at_n = expected_throughput(n, n)
        assert at_n > expected_throughput(n, n // 2)
        assert at_n > expected_throughput(n, 2 * n)

    def test_throughput_at_optimum_near_bound(self):
        assert expected_throughput(1000, 1000) == pytest.approx(
            1 / math.e, abs=0.01
        )

    def test_poisson_approximation_close(self):
        exact = expected_throughput(500, 400, exact=True)
        approx = expected_throughput(500, 400, exact=False)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_zero_tags(self):
        assert expected_throughput(0, 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_throughput(-1, 10)
        with pytest.raises(ValueError):
            expected_throughput(10, 0)
        with pytest.raises(ValueError):
            optimal_frame_size(0)
        with pytest.raises(ValueError):
            expected_total_slots(-1)

    def test_expected_total_slots(self):
        # Section V-A rounds e·n to 2.7·n.
        assert expected_total_slots(100) == pytest.approx(271.8, abs=0.1)


class TestAgainstSimulation:
    def test_theory_matches_first_frame_simulation(self):
        """The binomial model predicts the simulated first-frame single
        count."""
        import numpy as np

        from repro.core.qcd import QCDDetector
        from repro.core.timing import TimingModel
        from repro.sim.fast import fsa_fast
        from repro.protocols.estimators import expected_slot_counts

        n, frame = 300, 300
        _, e1, _ = expected_slot_counts(n, frame)
        sims = []
        for seed in range(15):
            rng = np.random.default_rng(seed)
            occ = np.bincount(rng.integers(0, frame, n), minlength=frame)
            sims.append(int((occ == 1).sum()))
        assert sum(sims) / len(sims) == pytest.approx(e1, rel=0.1)
