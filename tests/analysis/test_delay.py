"""Analytic delay-model tests (Figure 6 backing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.delay import expected_delay_reduction, expected_mean_delay
from repro.analysis.optimal_frame import SlotCosts
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.sim.fast import fsa_fast

QCD_COSTS = SlotCosts.from_timing(QCDDetector(8), TimingModel())
CRC_COSTS = SlotCosts.from_timing(CRCCDDetector(id_bits=64), TimingModel())


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            expected_mean_delay(0, 10, QCD_COSTS)
        with pytest.raises(ValueError):
            expected_mean_delay(5, 1, QCD_COSTS)

    def test_undersized_frame_raises(self):
        with pytest.raises(RuntimeError):
            expected_mean_delay(5000, 2, QCD_COSTS)

    def test_matches_simulation_qcd(self):
        n, frame = 500, 300
        predicted = expected_mean_delay(n, frame, QCD_COSTS)
        sims = [
            fsa_fast(
                n, frame, QCDDetector(8), TimingModel(), np.random.default_rng(s)
            ).delay.mean
            for s in range(15)
        ]
        assert sum(sims) / len(sims) == pytest.approx(predicted, rel=0.05)

    def test_matches_simulation_crc(self):
        n, frame = 500, 300
        predicted = expected_mean_delay(n, frame, CRC_COSTS)
        sims = [
            fsa_fast(
                n,
                frame,
                CRCCDDetector(id_bits=64),
                TimingModel(),
                np.random.default_rng(s),
            ).delay.mean
            for s in range(15)
        ]
        assert sum(sims) / len(sims) == pytest.approx(predicted, rel=0.05)


class TestFigure6Explanation:
    def test_reduction_near_61_percent(self):
        """The consistent-accounting reduction the simulation measures."""
        red = expected_delay_reduction(500, 300, CRC_COSTS, QCD_COSTS)
        assert red == pytest.approx(0.61, abs=0.03)

    def test_paper_80_percent_needs_ack_clock(self):
        """Stop the delay clock at the preamble ACK (singles cost only
        l_prm) and the same model yields the paper's >80%."""
        ack_clock = SlotCosts(idle=16.0, single=16.0, collided=16.0)
        red = expected_delay_reduction(500, 300, CRC_COSTS, ack_clock)
        assert red > 0.80

    def test_reduction_stable_across_cases(self):
        reds = [
            expected_delay_reduction(n, int(n * 0.6), CRC_COSTS, QCD_COSTS)
            for n in (50, 500, 5000)
        ]
        assert max(reds) - min(reds) < 0.04
