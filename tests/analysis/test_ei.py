"""EI formula tests -- Tables II and III digit-for-digit."""

from __future__ import annotations

import pytest

from repro.analysis.ei import (
    bt_ei_average,
    fsa_ei_lower_bound,
    measured_ei,
    preamble_bits,
)
from repro.experiments.config import PAPER_TABLE2, PAPER_TABLE3


class TestTable2:
    @pytest.mark.parametrize("strength", [4, 8, 16])
    def test_matches_paper(self, strength):
        assert fsa_ei_lower_bound(strength) == pytest.approx(
            PAPER_TABLE2[strength], abs=5e-4
        )

    def test_recommended_strength_beats_40_percent(self):
        """The abstract's headline: QCD saves more than 40%."""
        assert fsa_ei_lower_bound(8) > 0.40

    def test_monotone_in_strength(self):
        assert fsa_ei_lower_bound(4) > fsa_ei_lower_bound(8) > fsa_ei_lower_bound(16)


class TestTable3:
    @pytest.mark.parametrize("strength", [4, 8, 16])
    def test_matches_paper(self, strength):
        assert bt_ei_average(strength) == pytest.approx(
            PAPER_TABLE3[strength], abs=5e-4
        )

    def test_bt_ei_exceeds_fsa_ei(self):
        """BT has more overhead slots per tag (1.885 vs 1.7), so QCD's
        cheap overhead slots buy relatively more."""
        for s in (4, 8, 16):
            assert bt_ei_average(s) > fsa_ei_lower_bound(s)


class TestHelpers:
    def test_preamble_bits(self):
        assert preamble_bits(8) == 16

    def test_preamble_validation(self):
        with pytest.raises(ValueError):
            preamble_bits(0)

    def test_measured_ei(self):
        assert measured_ei(200.0, 80.0) == pytest.approx(0.6)

    def test_measured_ei_validation(self):
        with pytest.raises(ValueError):
            measured_ei(0.0, 10.0)


class TestParameterSensitivity:
    def test_longer_crc_raises_ei(self):
        """A heavier baseline (bigger CRC) makes QCD look better."""
        assert fsa_ei_lower_bound(8, crc_bits=64) > fsa_ei_lower_bound(8, crc_bits=32)

    def test_longer_id_raises_ei_toward_asymptote(self):
        """CRC-CD pays l_id in *every* slot, QCD only in single slots, so a
        longer ID widens the gap: EI climbs toward 1 − 1/2.7 ≈ 0.63 as
        l_id grows."""
        e64 = fsa_ei_lower_bound(8, id_bits=64)
        e256 = fsa_ei_lower_bound(8, id_bits=256)
        e4096 = fsa_ei_lower_bound(8, id_bits=4096)
        assert e64 < e256 < e4096 < 1 - 1 / 2.7

    def test_ei_positive_over_reasonable_range(self):
        for s in range(1, 33):
            assert fsa_ei_lower_bound(s) > 0
            assert bt_ei_average(s) > 0
