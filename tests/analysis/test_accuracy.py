"""QCD accuracy model tests (Figure 5 backing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import (
    collision_size_pmf,
    expected_accuracy_fsa,
    qcd_miss_probability,
    required_strength,
)


class TestMissProbability:
    def test_exact_vs_paper_approximation(self):
        exact = qcd_miss_probability(2, 8, exact=True)
        approx = qcd_miss_probability(2, 8, exact=False)
        assert exact == pytest.approx(1 / 255)
        assert approx == pytest.approx(1 / 256)
        assert exact > approx  # positive-only draws are slightly worse

    def test_geometric_decay_in_m(self):
        p2 = qcd_miss_probability(2, 4)
        p3 = qcd_miss_probability(3, 4)
        assert p3 == pytest.approx(p2**2)

    def test_no_miss_below_two(self):
        assert qcd_miss_probability(1, 8) == 0.0
        assert qcd_miss_probability(0, 8) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            qcd_miss_probability(2, 0)


class TestCollisionSizePmf:
    def test_normalized(self):
        pmf = collision_size_pmf(100, 100)
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-6)

    def test_pair_dominates_at_operating_point(self):
        pmf = collision_size_pmf(100, 100)
        assert pmf[2] > 0.5

    def test_overloaded_frame_shifts_mass_up(self):
        balanced = collision_size_pmf(60, 60)
        crowded = collision_size_pmf(240, 60)
        assert crowded[2] < balanced[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_size_pmf(1, 10)


class TestExpectedAccuracy:
    def test_increases_with_strength(self):
        accs = [expected_accuracy_fsa(500, 300, s) for s in (4, 8, 16)]
        assert accs[0] < accs[1] < accs[2]

    def test_figure5_shape(self):
        """Paper Figure 5: 8-bit strength reaches ~100% accuracy, 4-bit is
        visibly below, 16-bit is essentially perfect."""
        assert expected_accuracy_fsa(500, 300, 4) < 0.99
        assert expected_accuracy_fsa(500, 300, 8) > 0.99
        assert expected_accuracy_fsa(500, 300, 16) > 0.9999

    def test_crowding_raises_per_collision_detectability(self):
        """Counter-intuitive but correct: at a *fixed* frame size, more
        tags mean larger collisions (higher m), and P(miss) = (2^l−1)^−(m−1)
        decays geometrically in m -- so the expected accuracy *rises* with
        crowding.  (The paper's 'fewer tags -> higher accuracy' remark
        refers to its cases, where the frame scales with n and the
        full-inventory small-sample effects dominate; see the benchmark
        for Figure 5.)"""
        fewer = expected_accuracy_fsa(50, 300, 4)
        more = expected_accuracy_fsa(900, 300, 4)
        assert more > fewer

    def test_strength_dominates_population_effects(self):
        """The paper's main Figure 5 observation: strength moves accuracy
        far more than the tag count does -- across its cases, where the
        frame scales with the population (constant n/ℱ ≈ 5/3), the
        occupancy mix barely changes, while each strength step cuts the
        pair-miss rate 16x."""
        spread_n = abs(
            expected_accuracy_fsa(50, 30, 4) - expected_accuracy_fsa(5000, 3000, 4)
        )
        spread_l = abs(
            expected_accuracy_fsa(500, 300, 8) - expected_accuracy_fsa(500, 300, 4)
        )
        assert spread_l > 5 * spread_n

    def test_trivial_cases(self):
        assert expected_accuracy_fsa(0, 10, 4) == 1.0
        assert expected_accuracy_fsa(1, 10, 4) == 1.0


class TestModelAgainstSimulation:
    def test_first_frame_prediction_matches_inventory(self):
        """The analytic accuracy tracks the full-inventory simulation."""
        from repro.core.qcd import QCDDetector
        from repro.core.timing import TimingModel
        from repro.sim.fast import fsa_fast

        n, frame, strength = 500, 300, 4
        predicted = expected_accuracy_fsa(n, frame, strength)
        sims = [
            fsa_fast(
                n,
                frame,
                QCDDetector(strength),
                TimingModel(),
                np.random.default_rng(seed),
            ).accuracy
            for seed in range(20)
        ]
        measured = sum(sims) / len(sims)
        assert measured == pytest.approx(predicted, abs=0.02)


class TestRequiredStrength:
    def test_recommendation_is_8_for_99_percent(self):
        """The paper recommends l = 8; the model agrees for ~99% accuracy
        at the evaluation's operating points."""
        assert required_strength(0.99, 500, 300) <= 8

    def test_monotone_targets(self):
        low = required_strength(0.9, 500, 300)
        high = required_strength(0.9999, 500, 300)
        assert high >= low

    def test_validation(self):
        with pytest.raises(ValueError):
            required_strength(1.0, 10, 10)
        with pytest.raises(ValueError):
            required_strength(0.0, 10, 10)
