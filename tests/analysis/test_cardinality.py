"""Cardinality-estimation tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.cardinality import (
    estimate_cardinality,
    probing_airtime,
    zero_estimator,
)
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel


class TestZeroEstimator:
    def test_inverts_expectation(self):
        # With n = F, E[N0] ≈ F/e.
        f = 256
        n0 = round(f / math.e)
        assert zero_estimator(n0, f) == pytest.approx(f, rel=0.05)

    def test_all_idle_means_zero(self):
        assert zero_estimator(100, 100) == 0.0

    def test_saturated_frame_uninformative(self):
        assert zero_estimator(0, 64) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_estimator(5, 1)
        with pytest.raises(ValueError):
            zero_estimator(-1, 16)
        with pytest.raises(ValueError):
            zero_estimator(17, 16)


class TestEstimateCardinality:
    def test_accuracy(self):
        est = estimate_cardinality(
            500, 256, 30, QCDDetector(8), TimingModel(), np.random.default_rng(0)
        )
        assert est.n_hat == pytest.approx(500, rel=0.10)

    def test_more_frames_tighter(self):
        few = estimate_cardinality(
            300, 256, 2, QCDDetector(8), TimingModel(), np.random.default_rng(1)
        )
        many = estimate_cardinality(
            300, 256, 40, QCDDetector(8), TimingModel(), np.random.default_rng(1)
        )
        assert many.stderr < few.stderr
        assert many.relative_error_bound < few.relative_error_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cardinality(
                -1, 64, 1, QCDDetector(8), TimingModel(), np.random.default_rng(0)
            )
        with pytest.raises(ValueError):
            estimate_cardinality(
                10, 64, 0, QCDDetector(8), TimingModel(), np.random.default_rng(0)
            )

    def test_zero_population(self):
        est = estimate_cardinality(
            0, 64, 3, QCDDetector(8), TimingModel(), np.random.default_rng(2)
        )
        assert est.n_hat == 0.0

    def test_estimate_detector_independent(self):
        """The estimate uses only slot types; the detector only prices it."""
        a = estimate_cardinality(
            400, 256, 10, QCDDetector(8), TimingModel(), np.random.default_rng(3)
        )
        b = estimate_cardinality(
            400, 256, 10, CRCCDDetector(id_bits=64), TimingModel(),
            np.random.default_rng(3),
        )
        assert a.n_hat == b.n_hat
        assert a.slots == b.slots


class TestQcdSpeedup:
    def test_probing_airtime_formula(self):
        det = QCDDetector(8)
        t = probing_airtime(det, TimingModel(), n0=10, n1=5, nc=3)
        assert t == 10 * 16 + 8 * 16  # every slot costs the preamble only

    def test_estimation_speedup_is_full_preamble_ratio(self):
        """Estimation never transfers IDs, so QCD's speedup is the whole
        96/16 = 6x -- larger than identification's ~3x."""
        qcd = estimate_cardinality(
            400, 256, 10, QCDDetector(8), TimingModel(), np.random.default_rng(5)
        )
        crc = estimate_cardinality(
            400, 256, 10, CRCCDDetector(id_bits=64), TimingModel(),
            np.random.default_rng(5),
        )
        assert crc.airtime / qcd.airtime == pytest.approx(6.0, rel=0.01)
