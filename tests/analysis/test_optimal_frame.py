"""Time-optimal frame sizing tests."""

from __future__ import annotations

import pytest

from repro.analysis.optimal_frame import (
    SlotCosts,
    optimal_frame_size,
    time_per_identification,
)
from repro.core.crc_cd import CRCCDDetector
from repro.core.gen2_timing import Gen2TimingModel
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel


class TestSlotCosts:
    def test_from_timing_qcd(self):
        costs = SlotCosts.from_timing(QCDDetector(8), TimingModel())
        assert (costs.idle, costs.single, costs.collided) == (16, 80, 16)

    def test_from_timing_crc(self):
        costs = SlotCosts.from_timing(CRCCDDetector(id_bits=64), TimingModel())
        assert costs.idle == costs.single == costs.collided == 96

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotCosts(-1, 1, 1)
        with pytest.raises(ValueError):
            SlotCosts(1, 0, 1)


class TestObjective:
    def test_undersized_frame_is_infinite(self):
        costs = SlotCosts(1, 1, 1)
        assert time_per_identification(10_000, 2, costs) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            time_per_identification(0, 5, SlotCosts(1, 1, 1))
        with pytest.raises(ValueError):
            optimal_frame_size(0, SlotCosts(1, 1, 1))

    def test_unit_costs_recover_slot_throughput(self):
        """With c0 = c1 = cc = 1, g(F) = F / E[N1]: minimized at F = n."""
        costs = SlotCosts(1.0, 1.0, 1.0)
        n = 60
        assert optimal_frame_size(n, costs) == pytest.approx(n, abs=1)


class TestLemma1Preservation:
    """Equal overhead costs leave Lemma 1's ℱ = n optimum intact --
    QCD changes the time the optimum takes, not its location."""

    @pytest.mark.parametrize("n", [25, 60, 120])
    def test_paper_model_qcd_optimum_at_n(self, n):
        costs = SlotCosts.from_timing(QCDDetector(8), TimingModel())
        assert costs.idle == costs.collided  # the premise
        assert optimal_frame_size(n, costs) == pytest.approx(n, abs=1)

    @pytest.mark.parametrize("n", [25, 60, 120])
    def test_crc_optimum_at_n(self, n):
        costs = SlotCosts.from_timing(CRCCDDetector(id_bits=64), TimingModel())
        assert optimal_frame_size(n, costs) == pytest.approx(n, abs=1)


class TestCheapIdlesShiftOptimum:
    def test_cheap_idle_raises_optimum(self):
        n = 60
        balanced = SlotCosts(idle=10.0, single=10.0, collided=10.0)
        cheap_idle = SlotCosts(idle=1.0, single=10.0, collided=10.0)
        assert optimal_frame_size(n, cheap_idle) > optimal_frame_size(n, balanced)

    def test_gen2_qcd_optimum_above_n(self):
        """Under Gen2 timing an idle slot (T3 timeout) is cheaper than a
        collided one (full preamble reply), so the time-optimal frame is
        larger than n."""
        n = 60
        costs = SlotCosts.from_timing(QCDDetector(8), Gen2TimingModel())
        assert costs.idle < costs.collided
        assert optimal_frame_size(n, costs) > n

    def test_expensive_idle_lowers_optimum(self):
        n = 60
        pricey_idle = SlotCosts(idle=30.0, single=10.0, collided=3.0)
        assert optimal_frame_size(n, pricey_idle) < n

    def test_objective_improves_at_shifted_optimum(self):
        n = 60
        costs = SlotCosts.from_timing(QCDDetector(8), Gen2TimingModel())
        f_opt = optimal_frame_size(n, costs)
        assert time_per_identification(n, f_opt, costs) < time_per_identification(
            n, n, costs
        )
