"""Table IV generator tests."""

from __future__ import annotations

from repro.analysis.comparison import table4_profiles, table4_rows


class TestTable4:
    def test_rows_structure(self):
        rows = table4_rows()
        assert [r["axis"] for r in rows] == [
            "# of instructions",
            "complexity",
            "memory",
            "transmission",
        ]
        assert all(set(r) == {"axis", "CRC-CD", "QCD"} for r in rows)

    def test_headline_numbers(self):
        rows = {r["axis"]: r for r in table4_rows()}
        assert rows["complexity"]["CRC-CD"] == "O(l)"
        assert rows["complexity"]["QCD"] == "O(1)"
        assert rows["memory"]["CRC-CD"] == "1 KB"
        assert rows["memory"]["QCD"] == "16 bits"
        assert rows["transmission"]["CRC-CD"] == "96 bits"
        assert rows["transmission"]["QCD"] == "16 bits"
        assert float(rows["# of instructions"]["CRC-CD"]) > 100
        assert float(rows["# of instructions"]["QCD"]) == 1

    def test_profiles(self):
        crc, qcd = table4_profiles()
        assert crc.instructions_per_check > 100 * qcd.instructions_per_check
        assert crc.transmission_bits == 6 * qcd.transmission_bits

    def test_other_strengths(self):
        rows = {r["axis"]: r for r in table4_rows(strength=16)}
        assert rows["transmission"]["QCD"] == "32 bits"
