"""Lemma 2 tests: binary-tree slot-count theory."""

from __future__ import annotations

import pytest

from repro.analysis.bt_theory import (
    BT_COLLIDED_PER_TAG,
    BT_IDLE_PER_TAG,
    BT_SLOTS_PER_TAG,
    bt_average_throughput,
    expected_bt_collided,
    expected_bt_idle,
    expected_bt_slots,
)


class TestBaseCases:
    def test_zero_and_one(self):
        assert expected_bt_slots(0) == 1.0
        assert expected_bt_slots(1) == 1.0
        assert expected_bt_collided(0) == 0.0
        assert expected_bt_collided(1) == 0.0
        assert expected_bt_idle(0) == 1.0
        assert expected_bt_idle(1) == 0.0

    def test_two_tags_closed_form(self):
        """L(2) solves L = 1 + (1/2)(L(1)+L(1)) + (1/2)(L(2)+L(0)) ...
        exactly: with p0 = 1/4 for each of (0,2) and (2,0), L(2) = 5."""
        assert expected_bt_slots(2) == pytest.approx(5.0)

    def test_two_tags_collisions(self):
        # C(2)·(1 − 2·(1/4)) = 1 => C(2) = 2.
        assert expected_bt_collided(2) == pytest.approx(2.0)

    def test_two_tags_idles(self):
        # I(2) = L(2) − C(2) − 2 singles = 5 − 2 − 2 = 1.
        assert expected_bt_idle(2) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_bt_slots(-1)
        with pytest.raises(ValueError):
            expected_bt_collided(-1)
        with pytest.raises(ValueError):
            expected_bt_idle(-1)
        with pytest.raises(ValueError):
            bt_average_throughput(0)


class TestConsistency:
    @pytest.mark.parametrize("n", [2, 5, 10, 40, 100])
    def test_components_sum_to_total(self, n):
        total = expected_bt_slots(n)
        parts = expected_bt_collided(n) + expected_bt_idle(n) + n
        assert parts == pytest.approx(total, rel=1e-9)


class TestLemma2Asymptotics:
    def test_slots_per_tag_converges_to_2885(self):
        n = 300
        assert expected_bt_slots(n) / n == pytest.approx(
            BT_SLOTS_PER_TAG, abs=0.02
        )

    def test_collided_per_tag(self):
        n = 300
        assert expected_bt_collided(n) / n == pytest.approx(
            BT_COLLIDED_PER_TAG, abs=0.02
        )

    def test_idle_per_tag(self):
        n = 300
        assert expected_bt_idle(n) / n == pytest.approx(
            BT_IDLE_PER_TAG, abs=0.02
        )

    def test_average_throughput(self):
        assert bt_average_throughput() == pytest.approx(0.347, abs=0.01)
        assert bt_average_throughput(300) == pytest.approx(0.35, abs=0.01)


class TestAgainstSimulation:
    def test_recursion_matches_monte_carlo(self):
        import numpy as np

        from repro.core.ideal import IdealDetector
        from repro.core.timing import TimingModel
        from repro.sim.fast import bt_fast

        n = 100
        totals = [
            bt_fast(
                n, IdealDetector(64), TimingModel(), np.random.default_rng(s)
            ).true_counts.total
            for s in range(30)
        ]
        assert sum(totals) / len(totals) == pytest.approx(
            expected_bt_slots(n), rel=0.06
        )
