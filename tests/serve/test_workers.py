"""Worker-pool and engine tests.

The pool tests swap the real :class:`SimulationEngine` for a gated fake
so concurrency windows are deterministic: a barrier holds the leader's
computation open until every duplicate request has been admitted, which
pins the coalesce count exactly.  The engine tests run the real
simulation stack at tiny round counts.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import obs
from repro.obs import instruments as _inst
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import parse_simulate_request
from repro.serve.queue import AdmissionQueue
from repro.serve.workers import (
    JOB_DONE,
    JOB_FAILED,
    Job,
    SimulationEngine,
    WorkItem,
    WorkerPool,
    new_job_id,
)


def make_job(
    *, schemes=("crc",), rounds=2, seed=2010, client="tester", cases=("I",)
) -> Job:
    return Job(
        parse_simulate_request(
            {
                "version": 1,
                "cases": list(cases),
                "protocols": ["fsa"],
                "schemes": list(schemes),
                "rounds": rounds,
                "seed": seed,
                "client": client,
            }
        )
    )


class GatedEngine:
    """Engine stand-in: compute_point blocks until released."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.calls: list[str] = []
        self._lock = threading.Lock()
        self.point_seconds_ewma = 0.01
        self.fail_keys: set[str] = set()

    def key_for(self, rounds, seed, point) -> str:
        return f"{rounds}:{seed}:{point.case.name}:{point.protocol}:{point.scheme}"

    def compute_point(self, rounds, seed, point):
        key = self.key_for(rounds, seed, point)
        with self._lock:
            self.calls.append(key)
        assert self.release.wait(20), "gate never released"
        if key in self.fail_keys:
            raise RuntimeError(f"injected failure for {key}")
        return {"throughput": 0.5, "rounds": rounds}, "computed"

    def close(self) -> None:
        pass


def run_pool_scenario(scenario, concurrency: int = 8):
    """Run an async scenario(queue, pool, engine) with a live pool."""

    async def main():
        queue = AdmissionQueue(capacity=64, per_client=64)
        engine = GatedEngine()
        pool = WorkerPool(queue, Coalescer(), engine, concurrency=concurrency)
        await pool.start()
        try:
            return await asyncio.wait_for(
                scenario(queue, pool, engine), timeout=30
            )
        finally:
            queue.close()
            await pool.join()

    return asyncio.run(main())


class TestWorkerPool:
    def test_identical_points_compute_once(self):
        """N concurrent requests for one grid point -> one computation."""

        async def scenario(queue, pool, engine):
            jobs = [make_job(client=f"c{i}") for i in range(5)]
            for job in jobs:
                queue.put_batch(
                    [WorkItem(job=job, point=p) for p in job.request.points],
                    client=job.request.client,
                    priority=5,
                )
            # Wait until the leader is inside compute_point and every
            # duplicate has reached the coalescer, then release the gate.
            while pool.in_flight < len(jobs) or not engine.calls:
                await asyncio.sleep(0.005)
            engine.release.set()
            await asyncio.gather(*(j.wait_done() for j in jobs))
            return jobs

        jobs = run_pool_scenario(scenario)
        assert all(j.state == JOB_DONE for j in jobs)
        # Exactly one computed, the other four coalesced.
        sources = sorted(r.source for j in jobs for r in j.results)
        assert sources == ["coalesced"] * 4 + ["computed"]

    def test_distinct_points_all_compute(self):
        async def scenario(queue, pool, engine):
            engine.release.set()
            job = make_job(schemes=("crc", "qcd-4", "qcd-8"))
            queue.put_batch(
                [WorkItem(job=job, point=p) for p in job.request.points],
                client="tester",
                priority=5,
            )
            await job.wait_done()
            return job, list(engine.calls)

        job, calls = run_pool_scenario(scenario)
        assert job.state == JOB_DONE
        assert len(calls) == 3 and len(set(calls)) == 3
        assert [r.source for r in job.results] == ["computed"] * 3

    def test_leader_failure_fails_every_coalesced_job(self):
        async def scenario(queue, pool, engine):
            jobs = [make_job(client=f"c{i}") for i in range(3)]
            engine.fail_keys.add(
                engine.key_for(2, 2010, jobs[0].request.points[0])
            )
            for job in jobs:
                queue.put_batch(
                    [WorkItem(job=job, point=p) for p in job.request.points],
                    client=job.request.client,
                    priority=5,
                )
            while not engine.calls:
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.05)
            engine.release.set()
            await asyncio.gather(*(j.wait_done() for j in jobs))
            return jobs

        jobs = run_pool_scenario(scenario)
        assert all(j.state == JOB_FAILED for j in jobs)
        assert all("injected failure" in (j.error or "") for j in jobs)

    def test_sibling_points_skipped_after_job_fails(self):
        async def scenario(queue, pool, engine):
            job = make_job(schemes=("crc", "qcd-2", "qcd-3", "qcd-4"))
            engine.fail_keys.update(
                engine.key_for(2, 2010, p) for p in job.request.points
            )
            engine.release.set()
            queue.put_batch(
                [WorkItem(job=job, point=p) for p in job.request.points],
                client="tester",
                priority=5,
            )
            await job.wait_done()
            await asyncio.sleep(0.05)  # let any stragglers run
            return job, list(engine.calls)

        # One worker: the first point fails the job, the remaining three
        # queued siblings are skipped without touching the engine.
        job, calls = run_pool_scenario(scenario, concurrency=1)
        assert job.state == JOB_FAILED
        assert len(calls) == 1

    def test_coalesce_hit_counter(self):
        obs.enable()

        async def scenario(queue, pool, engine):
            jobs = [make_job(client=f"c{i}") for i in range(4)]
            for job in jobs:
                queue.put_batch(
                    [WorkItem(job=job, point=p) for p in job.request.points],
                    client=job.request.client,
                    priority=5,
                )
            while pool.in_flight < len(jobs) or not engine.calls:
                await asyncio.sleep(0.005)
            engine.release.set()
            await asyncio.gather(*(j.wait_done() for j in jobs))

        run_pool_scenario(scenario)
        hits = obs.STATE.registry.counter_totals(_inst.SERVE_COALESCE_HITS)
        assert hits == 3


class TestJobStream:
    def test_stream_replays_then_follows(self):
        async def scenario():
            job = make_job()
            point = job.request.points[0]
            from repro.serve.workers import PointResult

            job.publish(PointResult(point=point, stats={"a": 1}, source="memo"))

            collected = []

            async def consume():
                async for result in job.stream():
                    collected.append(result.stats["a"])

            task = asyncio.create_task(consume())
            await asyncio.sleep(0.01)
            job.publish(PointResult(point=point, stats={"a": 2}, source="memo"))
            job.finish(JOB_DONE)
            await asyncio.wait_for(task, timeout=5)
            return collected

        assert asyncio.run(scenario()) == [1, 2]

    def test_stream_of_finished_job_replays_everything(self):
        async def scenario():
            job = make_job()
            point = job.request.points[0]
            from repro.serve.workers import PointResult

            job.publish(PointResult(point=point, stats={"a": 1}, source="memo"))
            job.finish(JOB_DONE)
            return [r.stats["a"] async for r in job.stream()]

        assert asyncio.run(scenario()) == [1]


class TestSimulationEngine:
    def test_results_identical_to_experiment_suite(self, tmp_path):
        from dataclasses import asdict

        from repro.experiments.runner import ExperimentSuite

        engine = SimulationEngine(mc_workers=1, cache_dir=tmp_path / "cache")
        try:
            job = make_job(rounds=3, seed=77, schemes=("qcd-8",))
            point = job.request.points[0]
            stats, source = engine.compute_point(3, 77, point)
            assert source == "computed"
            with ExperimentSuite(rounds=3, seed=77) as suite:
                expected = asdict(suite.run("I", "fsa", "qcd-8"))
            assert stats == expected
            # Second call hits the in-memory memo; a fresh engine over the
            # same cache dir hits the disk cache -- all field-identical.
            again, source2 = engine.compute_point(3, 77, point)
            assert (again, source2) == (expected, "memo")
        finally:
            engine.close()
        fresh = SimulationEngine(mc_workers=1, cache_dir=tmp_path / "cache")
        try:
            cached, source3 = fresh.compute_point(3, 77, point)
            assert (cached, source3) == (expected, "cache")
        finally:
            fresh.close()

    def test_key_for_matches_result_cache_hash(self):
        from repro.experiments.cache import cache_key
        from repro.experiments.runner import ExperimentSuite

        engine = SimulationEngine(mc_workers=1)
        try:
            job = make_job(rounds=2, seed=5)
            point = job.request.points[0]
            key = engine.key_for(2, 5, point)
            with ExperimentSuite(rounds=2, seed=5) as suite:
                expected = cache_key(
                    suite._cache_params(point.case, point.protocol, point.scheme)
                )
            assert key == expected
        finally:
            engine.close()

    def test_suite_table_is_bounded(self):
        from repro.serve import workers as workers_mod

        engine = SimulationEngine(mc_workers=1)
        try:
            for seed in range(workers_mod.MAX_SUITES + 10):
                engine._suite(1, seed)
            assert len(engine._suites) == workers_mod.MAX_SUITES
        finally:
            engine.close()

    def test_compute_floor_enforced(self):
        import time

        engine = SimulationEngine(mc_workers=1, compute_floor_s=0.2)
        try:
            job = make_job(rounds=1, seed=9)
            t0 = time.perf_counter()
            _, source = engine.compute_point(1, 9, job.request.points[0])
            elapsed = time.perf_counter() - t0
            assert source == "computed"
            assert elapsed >= 0.2
        finally:
            engine.close()

    def test_new_job_ids_are_unique(self):
        ids = {new_job_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("job-") for i in ids)
