"""ServeClient retry/backoff tests against a scripted stub HTTP server.

The stub answers each connection from a prearranged list of responses,
so the tests pin exactly how many attempts the client makes and how the
server's ``Retry-After`` drives the sleep schedule (the sleep function
is injected -- no real waiting)."""

from __future__ import annotations

import json
import random
import socket
import threading

import pytest

from repro.serve.client import ServeClient, ServeError


class StubServer:
    """One scripted HTTP response per connection, in order."""

    def __init__(self, responses: list[bytes]) -> None:
        self._responses = list(responses)
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self.requests: list[bytes] = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            while self._responses:
                conn, _ = self._sock.accept()
                with conn:
                    conn.settimeout(5)
                    data = b""
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                    # Read any body the headers promise.
                    if b"content-length" in data.lower():
                        head, _, tail = data.partition(b"\r\n\r\n")
                        for line in head.split(b"\r\n"):
                            if line.lower().startswith(b"content-length"):
                                need = int(line.split(b":")[1])
                                while len(tail) < need:
                                    tail += conn.recv(4096)
                    self.requests.append(data)
                    conn.sendall(self._responses.pop(0))
        except OSError:
            pass

    def close(self) -> None:
        self._sock.close()


def http_response(
    status: int, body: dict, extra_headers: tuple[str, ...] = ()
) -> bytes:
    payload = json.dumps(body).encode()
    reason = {200: "OK", 429: "Too Many Requests", 400: "Bad Request",
              503: "Service Unavailable"}[status]
    head = [f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            *extra_headers,
            "Connection: close"]
    return ("\r\n".join(head) + "\r\n\r\n").encode() + payload


@pytest.fixture
def recorded_sleeps():
    return []


def make_client(port: int, sleeps: list, **kwargs) -> ServeClient:
    kwargs.setdefault("jitter", 0.0)
    kwargs.setdefault("rng", random.Random(0))
    return ServeClient(
        f"http://127.0.0.1:{port}", sleep=sleeps.append, **kwargs
    )


class TestRetries:
    def test_retries_429_until_success(self, recorded_sleeps):
        server = StubServer(
            [
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 7",)),
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 3",)),
                http_response(200, {"status": "ok"}),
            ]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=5)
            doc = client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert doc == {"status": "ok"}
        assert client.attempts == 3
        # Retry-After drives the waits verbatim (jitter pinned to 0).
        assert recorded_sleeps == [7.0, 3.0]

    def test_exponential_backoff_without_retry_after(self, recorded_sleeps):
        server = StubServer(
            [
                http_response(503, {"error": {"code": "draining"}}),
                http_response(503, {"error": {"code": "draining"}}),
                http_response(200, {"status": "ok"}),
            ]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=5, backoff_s=0.5
            )
            client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert recorded_sleeps == [0.5, 1.0]  # 0.5 * 2**attempt

    def test_backoff_capped(self, recorded_sleeps):
        server = StubServer(
            [http_response(429, {"error": {}}, ("Retry-After: 600",)),
             http_response(200, {"status": "ok"})]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=2, backoff_cap_s=10.0
            )
            client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert recorded_sleeps == [10.0]

    def test_jitter_stretches_delay_deterministically(self, recorded_sleeps):
        server = StubServer(
            [http_response(429, {"error": {}}, ("Retry-After: 4",)),
             http_response(200, {"status": "ok"})]
        )

        class FixedRng:
            def random(self):
                return 1.0

        try:
            client = ServeClient(
                f"http://127.0.0.1:{server.port}",
                retries=2,
                jitter=0.5,
                rng=FixedRng(),
                sleep=recorded_sleeps.append,
            )
            client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert recorded_sleeps == [4.0 * 1.5]

    def test_retries_exhausted_returns_final_429(self, recorded_sleeps):
        server = StubServer(
            [http_response(429, {"error": {"code": "overloaded"}})
             for _ in range(3)]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=2)
            with pytest.raises(ServeError) as excinfo:
                client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert excinfo.value.status == 429
        assert client.attempts == 3

    def test_4xx_other_than_429_never_retried(self, recorded_sleeps):
        server = StubServer(
            [http_response(
                400,
                {"error": {"code": "invalid_request", "message": "bad",
                           "field": "rounds"}},
            )]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=5)
            with pytest.raises(ServeError) as excinfo:
                client.request_json("POST", "/v1/simulate", {"version": 1})
        finally:
            server.close()
        assert excinfo.value.code == "invalid_request"
        assert client.attempts == 1
        assert recorded_sleeps == []

    def test_connection_refused_retries_then_raises(self, recorded_sleeps):
        # Grab a port with no listener.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = make_client(port, recorded_sleeps, retries=2, backoff_s=0.1)
        with pytest.raises(OSError):
            client.request("GET", "/healthz")
        assert client.attempts == 3
        assert recorded_sleeps == [0.1, 0.2]

    def test_zero_retries_surfaces_429_immediately(self, recorded_sleeps):
        server = StubServer(
            [http_response(429, {"error": {"code": "overloaded"}})]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=0)
            status, _, _ = client.request("GET", "/healthz")
        finally:
            server.close()
        assert status == 429
        assert client.attempts == 1
        assert recorded_sleeps == []


def _request_id_headers(raw_requests: list[bytes]) -> list[str]:
    """The X-Request-Id value each recorded raw request carried."""
    rids = []
    for raw in raw_requests:
        for line in raw.split(b"\r\n"):
            if line.lower().startswith(b"x-request-id:"):
                rids.append(line.split(b":", 1)[1].strip().decode())
    return rids


class TestRequestId:
    def test_rid_generated_up_front_and_reused_across_retries(
        self, recorded_sleeps
    ):
        """One logical request is one id: every 429 retry resends the
        same X-Request-Id, so the server sees a single trace."""
        server = StubServer(
            [
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 1",)),
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 1",)),
                http_response(200, {"status": "ok"}),
            ]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=5)
            client.request_json("GET", "/healthz")
        finally:
            server.close()
        rids = _request_id_headers(server.requests)
        assert len(rids) == 3
        assert len(set(rids)) == 1
        assert rids[0] == client.last_request_id
        assert rids[0].startswith("cli-")

    def test_explicit_request_id_sent_verbatim(self, recorded_sleeps):
        server = StubServer([http_response(200, {"status": "ok"})])
        try:
            client = make_client(server.port, recorded_sleeps)
            client.request("GET", "/healthz", request_id="cli-pinned")
        finally:
            server.close()
        assert _request_id_headers(server.requests) == ["cli-pinned"]
        assert client.last_request_id == "cli-pinned"

    def test_each_logical_request_gets_a_fresh_id(self, recorded_sleeps):
        server = StubServer(
            [http_response(200, {"a": 1}), http_response(200, {"a": 2})]
        )
        try:
            client = make_client(server.port, recorded_sleeps)
            client.request("GET", "/healthz")
            first = client.last_request_id
            client.request("GET", "/healthz")
            second = client.last_request_id
        finally:
            server.close()
        assert first != second
        assert _request_id_headers(server.requests) == [first, second]

    def test_server_timing_parsed_from_final_response(
        self, recorded_sleeps
    ):
        """The retried 429 carries no timing; the final 200's breakdown
        lands in last_server_timing as seconds."""
        server = StubServer(
            [
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 1",)),
                http_response(
                    200,
                    {"status": "ok"},
                    ("Server-Timing: queue_wait;dur=12.5, "
                     "compute;dur=500.0",),
                ),
            ]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=2)
            client.request("GET", "/healthz")
        finally:
            server.close()
        assert client.last_server_timing == {
            "queue_wait": pytest.approx(0.0125),
            "compute": pytest.approx(0.5),
        }

    def test_server_timing_reset_when_header_absent(self, recorded_sleeps):
        server = StubServer(
            [
                http_response(200, {"a": 1}, ("Server-Timing: x;dur=1.0",)),
                http_response(200, {"a": 2}),
            ]
        )
        try:
            client = make_client(server.port, recorded_sleeps)
            client.request("GET", "/healthz")
            assert client.last_server_timing == {"x": pytest.approx(0.001)}
            client.request("GET", "/healthz")
        finally:
            server.close()
        assert client.last_server_timing == {}

    def test_stream_job_sends_its_own_request_id(self):
        job_line = json.dumps({"type": "job", "job_id": "j1"})
        done_line = json.dumps({"type": "done", "state": "done"})
        body = (job_line + "\n" + done_line + "\n").encode()
        raw = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        server = StubServer([raw])
        try:
            client = make_client(server.port, [])
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        assert [line["type"] for line in lines] == ["job", "done"]
        (rid,) = _request_id_headers(server.requests)
        assert rid == client.last_request_id
        assert rid.startswith("cli-")


class TestParsing:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            ServeClient("https://example.com")

    def test_bare_host_port_accepted(self):
        client = ServeClient("127.0.0.1:9999")
        assert (client.host, client.port) == ("127.0.0.1", 9999)

    def test_error_envelope_attached(self, recorded_sleeps):
        server = StubServer(
            [http_response(
                400, {"error": {"code": "invalid_request", "message": "m"}}
            )]
        )
        try:
            client = make_client(server.port, recorded_sleeps)
            with pytest.raises(ServeError) as excinfo:
                client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert excinfo.value.envelope["error"]["code"] == "invalid_request"

    def test_non_json_error_body_degrades_gracefully(self, recorded_sleeps):
        payload = b"<html>gateway error</html>"
        raw = (
            b"HTTP/1.1 400 Bad Request\r\nContent-Length: "
            + str(len(payload)).encode()
            + b"\r\nConnection: close\r\n\r\n"
            + payload
        )
        server = StubServer([raw])
        try:
            client = make_client(server.port, recorded_sleeps)
            with pytest.raises(ServeError) as excinfo:
                client.request_json("GET", "/healthz")
        finally:
            server.close()
        assert excinfo.value.code == "unknown"


def ndjson_response(*lines: dict, done: bool = True) -> bytes:
    """A scripted NDJSON stream response; ``done=False`` ends the
    connection mid-stream, the way a killed server does."""
    body = b"".join(
        json.dumps(line).encode() + b"\n" for line in lines
    )
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n\r\n" + body
    )


def _job(job_id: str = "j1") -> dict:
    return {"type": "job", "job_id": job_id, "state": "running"}


def _result(case: str) -> dict:
    return {
        "type": "result",
        "job_id": "j1",
        "point": {"case": {"name": case}, "protocol": "fsa",
                  "scheme": "crc"},
        "stats": {"n_tags": 50},
    }


def _done() -> dict:
    return {"type": "done", "job_id": "j1", "state": "done",
            "elapsed_s": 0.1}


class TestStreamChurn:
    """``stream_job`` against a flapping server -- the client-side half
    of surviving fleet churn: reconnect, re-fetch, deduplicate the
    replayed prefix, and deliver every line exactly once."""

    def test_mid_stream_cut_then_replay_is_exactly_once(
        self, recorded_sleeps
    ):
        """The stream dies after the first result; the re-fetch replays
        the whole job from the top.  The caller sees one job header, each
        result once, one done."""
        server = StubServer(
            [
                ndjson_response(_job(), _result("I"), done=False),
                ndjson_response(
                    _job(), _result("I"), _result("II"), _done()
                ),
            ]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=3, backoff_s=0.2
            )
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        kinds = [line["type"] for line in lines]
        assert kinds == ["job", "result", "result", "done"]
        cases = [line["point"]["case"]["name"] for line in lines
                 if line["type"] == "result"]
        assert cases == ["I", "II"]  # replayed "I" deduplicated
        assert client.attempts == 2
        assert recorded_sleeps == [0.2]
        # Both fetches belong to one logical stream: one request id.
        rids = _request_id_headers(server.requests)
        assert len(rids) == 2 and len(set(rids)) == 1

    def test_connection_cut_before_any_line_retries(self, recorded_sleeps):
        """An empty response (listener died as we connected) is churn,
        not an error: the client backs off and reconnects."""
        server = StubServer(
            [b"", ndjson_response(_job(), _result("I"), _done())]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=2, backoff_s=0.1
            )
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        assert [line["type"] for line in lines] == ["job", "result", "done"]
        assert client.attempts == 2
        assert recorded_sleeps == [0.1]

    def test_connection_refused_then_listener_back(self, recorded_sleeps):
        """Connection refused mid-churn (the router restarting) is
        retryable for streams exactly as for plain requests."""
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = make_client(port, recorded_sleeps, retries=2, backoff_s=0.1)
        with pytest.raises(OSError):
            list(client.stream_job("j1"))
        assert client.attempts == 3
        assert recorded_sleeps == [0.1, 0.2]

    def test_429_during_refetch_honors_retry_after(self, recorded_sleeps):
        """A shed re-fetch (the job's new owner still warming) sleeps
        the server's Retry-After, then succeeds."""
        server = StubServer(
            [
                ndjson_response(_job(), done=False),
                http_response(429, {"error": {"code": "overloaded"}},
                              ("Retry-After: 5",)),
                ndjson_response(_job(), _result("I"), _done()),
            ]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=3, backoff_s=0.2
            )
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        assert [line["type"] for line in lines] == ["job", "result", "done"]
        assert client.attempts == 3
        assert recorded_sleeps == [0.2, 5.0]

    def test_torn_json_line_is_churn_not_crash(self, recorded_sleeps):
        """A stream cut mid-line leaves torn JSON; the client treats it
        as a connection failure and re-fetches."""
        torn = ndjson_response(_job(), done=False)[:-1] + b'{"type": "res'
        server = StubServer(
            [torn, ndjson_response(_job(), _result("I"), _done())]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=2, backoff_s=0.1
            )
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        assert [line["type"] for line in lines] == ["job", "result", "done"]
        assert client.attempts == 2

    def test_exhausted_stream_retries_raise(self, recorded_sleeps):
        """Churn that never heals surfaces as ConnectionError after the
        retry budget, not as a silent short stream."""
        server = StubServer(
            [ndjson_response(_job(), _result("I"), done=False),
             ndjson_response(_job(), _result("I"), done=False)]
        )
        try:
            client = make_client(
                server.port, recorded_sleeps, retries=1, backoff_s=0.1
            )
            with pytest.raises(ConnectionError):
                list(client.stream_job("j1"))
        finally:
            server.close()
        assert client.attempts == 2

    def test_clean_stream_still_single_attempt(self, recorded_sleeps):
        """The churn machinery is invisible on the happy path."""
        server = StubServer(
            [ndjson_response(_job(), _result("I"), _result("II"), _done())]
        )
        try:
            client = make_client(server.port, recorded_sleeps, retries=3)
            lines = list(client.stream_job("j1"))
        finally:
            server.close()
        assert [line["type"] for line in lines] == [
            "job", "result", "result", "done"
        ]
        assert client.attempts == 1
        assert recorded_sleeps == []
