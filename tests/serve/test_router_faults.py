"""Fault injection against the live fleet: kill, drain, resume.

The claims under test (the PR's acceptance criteria):

* **SIGKILL mid-request** -- a backend killed while computing is ejected
  from the ring and the in-flight request retried on the new owner of
  its key: the client sees a 200, never a 5xx;
* **SIGKILL mid-NDJSON-stream** -- an async job's home backend killed
  mid-stream: the router resubmits the job to the new owner and resumes
  the client's stream without duplicating or losing result lines;
* **SIGTERM drain** -- a draining backend's ``503 draining`` triggers
  re-routing inside the router, not a client-visible error;
* **respawn** -- a killed spawned backend is respawned and rejoins the
  ring.

Timing discipline: backends run with ``--compute-floor`` so "mid-request"
is a deterministic window, not a race the test usually wins.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.config import CASES
from repro.serve.protocol import GridPoint

from tests.serve.test_router import _metric_value, _scrape, _simulate_body

pytestmark = pytest.mark.slow


def _owner_of(router, *, rounds: int, seed: int, body: dict) -> str:
    """The backend currently owning the request's (single) grid point."""
    point = GridPoint(
        case=CASES[body["cases"][0]],
        protocol=body["protocols"][0],
        scheme=body["schemes"][0],
    )
    key = router.app.point_key(rounds, seed, point)
    return router.app.ring.owner(key)


class TestSigkill:
    def test_kill_mid_request_retries_on_new_owner(self, make_router):
        router = make_router(backends=2, compute_floor_s=1.0)
        router.wait_ring(2)
        body = _simulate_body(seed=7001)
        owner = _owner_of(router, rounds=2, seed=7001, body=body)

        outcome: dict = {}

        def fire():
            client = router.client(retries=0, timeout_s=60.0)
            try:
                status, _, payload = client.request(
                    "POST", "/v1/simulate", body
                )
                outcome["status"] = status
                outcome["doc"] = json.loads(payload)
            except Exception as exc:  # noqa: BLE001 - the assert target
                outcome["error"] = repr(exc)

        thread = threading.Thread(target=fire)
        thread.start()
        # The 1s compute floor holds the request on the owner; kill it
        # squarely inside that window.
        time.sleep(0.4)
        router.kill_backend(owner)
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert outcome.get("error") is None, outcome["error"]
        assert outcome["status"] == 200
        doc = outcome["doc"]
        assert doc["state"] == "done" and len(doc["results"]) == 1
        # The survivor, not the corpse, served it.
        (served,) = doc["served_by"].keys()
        assert served != owner
        metrics = _scrape(router.url)
        assert _metric_value(metrics, "repro_router_retries_total") >= 1
        assert (
            _metric_value(
                metrics, "repro_router_ejections_total",
                reason="unreachable",
            )
            >= 1
        )

    def test_kill_under_concurrent_load_zero_5xx(self, make_router):
        """A backend dies while a burst is in flight: every request is
        answered 200 (re-routed) or 429 (honestly shed) -- never 5xx,
        never a client-visible transport error."""
        router = make_router(backends=2, compute_floor_s=0.2)
        router.wait_ring(2)

        def fire(i):
            client = router.client(retries=0, timeout_s=60.0)
            try:
                status, _, _ = client.request(
                    "POST", "/v1/simulate",
                    _simulate_body(seed=7100 + i),
                )
                return status
            except Exception as exc:  # noqa: BLE001 - the assert target
                return repr(exc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(fire, i) for i in range(16)]
            time.sleep(0.35)  # burst in flight on both backends
            router.kill_backend("b1")
            statuses = [f.result() for f in futures]
        bad = [s for s in statuses if s not in (200, 429)]
        assert not bad, f"client-visible failures under kill: {bad}"
        assert statuses.count(200) >= 1

    def test_kill_mid_stream_resumes_exactly_once(self, make_router):
        """The home backend dies mid-NDJSON-stream: the router re-homes
        the job and the client's single stream still delivers every
        point exactly once, ending in a clean ``done``."""
        router = make_router(backends=2, compute_floor_s=0.5)
        router.wait_ring(2)
        client = router.client(timeout_s=120.0)
        submitted = client.simulate(_simulate_body(
            cases=["I", "II"], schemes=["crc", "qcd-8"],
            seed=7200, mode="async",
        ))
        job_id = submitted["job_id"]
        home = router.app.jobs[job_id].backend_id

        lines: list[dict] = []
        first_result = threading.Event()
        stream_error: list[str] = []

        def consume():
            try:
                for line in client.stream_job(job_id):
                    lines.append(line)
                    if line["type"] == "result":
                        first_result.set()
            except Exception as exc:  # noqa: BLE001 - the assert target
                stream_error.append(repr(exc))
            finally:
                first_result.set()

        thread = threading.Thread(target=consume)
        thread.start()
        assert first_result.wait(60), "no first result within 60s"
        # ~3 of 4 points still pending (0.5s floor each): kill the home
        # backend squarely mid-stream.
        router.kill_backend(home)
        thread.join(timeout=120)
        assert not thread.is_alive()

        assert not stream_error, stream_error
        kinds = [line["type"] for line in lines]
        assert kinds[0] == "job" and kinds[-1] == "done"
        assert lines[-1]["state"] == "done"
        points = [
            json.dumps(line["point"], sort_keys=True)
            for line in lines
            if line["type"] == "result"
        ]
        assert len(points) == 4, f"lost results: {kinds}"
        assert len(set(points)) == 4, "duplicated results after resume"
        assert (
            _metric_value(
                _scrape(router.url), "repro_router_stream_resumes_total"
            )
            >= 1
        )

    def test_killed_backend_respawns_and_rejoins(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        router.kill_backend("b0")
        # The ring dips to 1 (ejection) then returns to 2 (respawn).
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and len(router.app.ring) == 2:
            time.sleep(0.02)
        router.wait_ring(2, timeout=60)
        assert router.backend("b0").restarts == 1
        doc = router.client().simulate(_simulate_body(seed=7300))
        assert doc["state"] == "done"


class TestSigtermDrain:
    def test_drain_reroutes_without_client_errors(self, make_router):
        """SIGTERM one backend, then hit the router for keys across the
        whole ring: requests owned by the draining backend are re-routed
        off its ``503 draining`` answer -- every client call returns 200.
        """
        router = make_router(backends=2, drain_grace_s=10.0)
        router.wait_ring(2)
        router.terminate_backend("b0")

        def fire(i):
            client = router.client(retries=0, timeout_s=60.0)
            try:
                status, _, _ = client.request(
                    "POST", "/v1/simulate",
                    _simulate_body(seed=7400 + i),
                )
                return status
            except Exception as exc:  # noqa: BLE001 - the assert target
                return repr(exc)

        with ThreadPoolExecutor(max_workers=6) as pool:
            statuses = list(pool.map(fire, range(12)))
        assert statuses == [200] * 12, statuses

    def test_router_drain_rejects_new_work_typed(self, make_router):
        router = make_router(backends=1)
        router.wait_ring(1)
        assert router.app is not None and router.loop is not None
        router.loop.call_soon_threadsafe(router.app.begin_drain)
        # The router answers its drain window with a typed 503, and the
        # envelope carries a Retry-After hint.
        client = router.client(retries=0)
        deadline = time.monotonic() + 10
        status = None
        while time.monotonic() < deadline:
            try:
                status, headers, payload = client.request(
                    "POST", "/v1/simulate", _simulate_body(seed=7500)
                )
            except OSError:
                break  # listener already closed: drain completed
            if status == 503:
                doc = json.loads(payload)
                assert doc["error"]["code"] == "draining"
                lower = {k.lower(): v for k, v in headers.items()}
                assert "retry-after" in lower
                break
            time.sleep(0.05)
        assert status in (503, None)
