"""Coalescer unit tests: leader election, follower fan-out, error paths."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


class TestLease:
    def test_first_lease_is_leader(self):
        async def scenario():
            c = Coalescer()
            leader, fut = c.lease("k")
            assert leader and not fut.done()
            assert c.in_flight() == 1
            c.resolve("k", "value")
            return await fut

        assert asyncio.run(scenario()) == "value"

    def test_second_lease_is_follower_on_same_future(self):
        async def scenario():
            c = Coalescer()
            _, fut1 = c.lease("k")
            leader2, fut2 = c.lease("k")
            assert not leader2 and fut2 is fut1
            assert (c.leads, c.hits) == (1, 1)
            c.resolve("k", 42)
            return await asyncio.gather(fut1, fut2)

        assert asyncio.run(scenario()) == [42, 42]

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            c = Coalescer()
            leader_a, _ = c.lease("a")
            leader_b, _ = c.lease("b")
            assert leader_a and leader_b
            assert c.in_flight() == 2
            c.resolve("a", 1)
            c.resolve("b", 2)
            assert c.in_flight() == 0

        asyncio.run(scenario())

    def test_resolve_clears_key_for_next_round(self):
        async def scenario():
            c = Coalescer()
            c.lease("k")
            c.resolve("k", "first")
            leader, fut = c.lease("k")  # key left the table: new leader
            assert leader
            c.resolve("k", "second")
            assert c.leads == 2
            return await fut

        assert asyncio.run(scenario()) == "second"

    def test_error_propagates_to_every_follower(self):
        async def scenario():
            c = Coalescer()
            _, fut1 = c.lease("k")
            _, fut2 = c.lease("k")
            c.resolve("k", error=RuntimeError("kernel died"))
            for fut in (fut1, fut2):
                with pytest.raises(RuntimeError, match="kernel died"):
                    await fut

        asyncio.run(scenario())


class TestCompute:
    def test_concurrent_computes_run_thunk_once(self):
        calls = 0

        async def thunk():
            nonlocal calls
            calls += 1
            await asyncio.sleep(0.01)
            return "result"

        async def scenario():
            c = Coalescer()
            outcomes = await asyncio.gather(
                *(c.compute("k", thunk) for _ in range(5))
            )
            return outcomes

        outcomes = asyncio.run(scenario())
        assert calls == 1
        assert all(value == "result" for value, _ in outcomes)
        assert sorted(coalesced for _, coalesced in outcomes) == [
            False, True, True, True, True,
        ]

    def test_thunk_error_reaches_leader_and_followers(self):
        async def thunk():
            await asyncio.sleep(0.01)
            raise ValueError("boom")

        async def scenario():
            c = Coalescer()
            results = await asyncio.gather(
                *(c.compute("k", thunk) for _ in range(3)),
                return_exceptions=True,
            )
            assert all(isinstance(r, ValueError) for r in results)
            assert c.in_flight() == 0

        asyncio.run(scenario())
