"""Load-generator tests: percentile math, the report schema against a
live server, and the ratio-based baseline gate."""

from __future__ import annotations

import json
import math

import pytest

from repro.serve.loadgen import (
    check_against_baseline,
    main,
    percentile,
    run_loadgen,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 90) == 90.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_single_value(self):
        assert percentile([42.0], 50) == 42.0
        assert percentile([42.0], 99) == 42.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestGate:
    BASELINE = {"goodput_ratio": 0.9}

    def test_clean_report_passes(self):
        report = {"errors": 0, "goodput_ratio": 0.85}
        assert check_against_baseline(report, self.BASELINE, 0.5) == []

    def test_any_5xx_fails(self):
        report = {"errors": 1, "goodput_ratio": 0.99}
        problems = check_against_baseline(report, self.BASELINE, 0.5)
        assert len(problems) == 1 and "5xx" in problems[0]

    def test_goodput_collapse_fails(self):
        report = {"errors": 0, "goodput_ratio": 0.3}
        problems = check_against_baseline(report, self.BASELINE, 0.5)
        assert len(problems) == 1 and "goodput" in problems[0]

    def test_tolerance_is_ratio_based(self):
        report = {"errors": 0, "goodput_ratio": 0.46}
        # 0.46 > 0.9 * (1 - 0.5) = 0.45: inside tolerance.
        assert check_against_baseline(report, self.BASELINE, 0.5) == []

    def test_missing_baseline_ratio_skips_that_check(self):
        report = {"errors": 0, "goodput_ratio": 0.01}
        assert check_against_baseline(report, {}, 0.5) == []


class TestAgainstLiveServer:
    def test_report_schema_and_zero_errors(self, make_app):
        app = make_app(concurrency=4, mc_workers=1)
        report = run_loadgen(
            app.url,
            rate=40.0,
            duration_s=1.0,
            concurrency=64,
            rounds=1,
            unique_seeds=4,
        )
        assert report["offered"] == 40
        assert report["errors"] == 0
        assert report["completed"] + report["shed"] == report["offered"]
        assert 0.0 <= report["goodput_ratio"] <= 1.0
        lat = report["latency_ms"]
        assert lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert report["max_in_flight"] >= 1
        json.dumps(report)  # report is JSON-serializable as-is

    def test_main_writes_report_and_gates(self, make_app, tmp_path, capsys):
        app = make_app(concurrency=4, mc_workers=1)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"goodput_ratio": 0.05}))
        out_path = tmp_path / "report.json"
        rc = main(
            [
                "--url", app.url,
                "--rate", "25",
                "--duration", "1",
                "--rounds", "1",
                "--out", str(out_path),
                "--baseline", str(baseline_path),
                "--tolerance", "0.9",
            ]
        )
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["offered"] == 25
        captured = capsys.readouterr()
        assert "gate OK" in captured.out

    def test_main_fails_gate_on_impossible_baseline(
        self, make_app, tmp_path, capsys
    ):
        app = make_app(concurrency=4, mc_workers=1)
        baseline_path = tmp_path / "baseline.json"
        # goodput_ratio 50 is unattainable; with tolerance 0 any real
        # run regresses against it.
        baseline_path.write_text(json.dumps({"goodput_ratio": 50.0}))
        rc = main(
            [
                "--url", app.url,
                "--rate", "10",
                "--duration", "1",
                "--rounds", "1",
                "--baseline", str(baseline_path),
                "--tolerance", "0.0",
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err
