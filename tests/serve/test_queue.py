"""AdmissionQueue unit tests: ordering, fairness, backpressure, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.queue import (
    AdmissionQueue,
    ClientQuotaExceeded,
    QueueClosed,
    QueueFull,
)


def drain(queue: AdmissionQueue) -> list:
    return list(queue.drain_items())


class TestOrdering:
    def test_higher_priority_dequeues_first(self):
        q = AdmissionQueue(capacity=16)
        q.put_batch(["low-1", "low-2"], client="a", priority=1)
        q.put_batch(["high"], client="a", priority=9)
        q.put_batch(["mid"], client="a", priority=5)
        assert drain(q) == ["high", "mid", "low-1", "low-2"]

    def test_fifo_within_one_client_and_priority(self):
        q = AdmissionQueue(capacity=16)
        q.put_batch(["1", "2", "3"], client="a", priority=5)
        assert drain(q) == ["1", "2", "3"]

    def test_two_clients_interleave_round_robin(self):
        # Client a bursts 3 items, then b submits 3: fairness ranks make
        # them alternate instead of a's burst running first.
        q = AdmissionQueue(capacity=16)
        q.put_batch(["a1", "a2", "a3"], client="a", priority=5)
        q.put_batch(["b1", "b2", "b3"], client="b", priority=5)
        assert drain(q) == ["a1", "b1", "a2", "b2", "a3", "b3"]

    def test_fairness_is_per_priority(self):
        q = AdmissionQueue(capacity=16)
        q.put_batch(["a-low"], client="a", priority=1)
        q.put_batch(["b-high1", "b-high2"], client="b", priority=8)
        assert drain(q) == ["b-high1", "b-high2", "a-low"]

    def test_ranks_reset_when_client_drains(self):
        q = AdmissionQueue(capacity=16)
        q.put_batch(["a1", "a2"], client="a", priority=5)
        assert drain(q) == ["a1", "a2"]
        # a drained fully; a fresh burst must not carry stale rank debt.
        q.put_batch(["a3"], client="a", priority=5)
        q.put_batch(["b1"], client="b", priority=5)
        assert drain(q) == ["a3", "b1"]


class TestAdmission:
    def test_batch_is_all_or_nothing_on_capacity(self):
        q = AdmissionQueue(capacity=4, per_client=4)
        q.put_batch(["1", "2", "3"], client="a", priority=5)
        with pytest.raises(QueueFull):
            q.put_batch(["4", "5"], client="b", priority=5)
        # Nothing from the rejected batch leaked in.
        assert q.depth() == 3
        q.put_batch(["4"], client="b", priority=5)
        assert q.depth() == 4

    def test_per_client_quota(self):
        q = AdmissionQueue(capacity=100, per_client=3)
        q.put_batch(["1", "2", "3"], client="a", priority=5)
        with pytest.raises(ClientQuotaExceeded):
            q.put_batch(["4"], client="a", priority=5)
        # Another client still has room.
        q.put_batch(["b1"], client="b", priority=5)
        assert q.client_depth("a") == 3
        assert q.client_depth("b") == 1

    def test_quota_releases_as_items_dequeue(self):
        q = AdmissionQueue(capacity=100, per_client=2)
        q.put_batch(["1", "2"], client="a", priority=5)
        assert drain(q) == ["1", "2"]
        q.put_batch(["3", "4"], client="a", priority=5)  # no quota error
        assert q.client_depth("a") == 2

    def test_default_per_client_is_quarter_capacity(self):
        assert AdmissionQueue(capacity=100).per_client == 25
        assert AdmissionQueue(capacity=2).per_client == 1

    def test_rejections_carry_retry_hint(self):
        q = AdmissionQueue(capacity=1)
        q.put_batch(["1"], client="a", priority=5)
        with pytest.raises(QueueFull) as excinfo:
            q.put_batch(["2"], client="b", priority=5)
        assert excinfo.value.retry_after_s >= 1.0

    def test_queue_full_hint_reflects_depth_and_service_time(self):
        # 4 queued items x 2.0 s each over 2 workers = 4 s until drained.
        q = AdmissionQueue(
            capacity=4, per_client=4, service_time_s=2.0, workers=2
        )
        q.put_batch(["1", "2", "3", "4"], client="a", priority=5)
        with pytest.raises(QueueFull) as excinfo:
            q.put_batch(["5"], client="b", priority=5)
        assert excinfo.value.retry_after_s == pytest.approx(4.0)

    def test_quota_hint_reflects_depth_and_service_time(self):
        q = AdmissionQueue(
            capacity=100, per_client=3, service_time_s=2.0, workers=2
        )
        q.put_batch(["1", "2", "3"], client="a", priority=5)
        with pytest.raises(ClientQuotaExceeded) as excinfo:
            q.put_batch(["4"], client="a", priority=5)
        assert excinfo.value.retry_after_s == pytest.approx(3.0)

    def test_hints_resolve_callable_service_time_live(self):
        # The server passes the engine's EWMA as a callable; the hint
        # must read it at rejection time, not at construction.
        ewma = {"value": 0.0}
        q = AdmissionQueue(
            capacity=2,
            per_client=2,
            service_time_s=lambda: ewma["value"],
            workers=1,
        )
        q.put_batch(["1", "2"], client="a", priority=5)
        ewma["value"] = 5.0
        with pytest.raises(QueueFull) as excinfo:
            q.put_batch(["3"], client="b", priority=5)
        assert excinfo.value.retry_after_s == pytest.approx(10.0)

    def test_hints_floor_at_one_second_without_service_time(self):
        q = AdmissionQueue(capacity=1)
        q.put_batch(["1"], client="a", priority=5)
        with pytest.raises(QueueFull) as excinfo:
            q.put_batch(["2"], client="b", priority=5)
        assert excinfo.value.retry_after_s == 1.0

    def test_empty_batch_is_a_noop(self):
        q = AdmissionQueue(capacity=1)
        q.put_batch([], client="a", priority=5)
        assert q.depth() == 0


class TestEstimateWait:
    def test_scales_with_depth_and_workers(self):
        q = AdmissionQueue(capacity=100)
        q.put_batch([str(i) for i in range(20)], client="a", priority=5)
        assert q.estimate_wait_s(1.0, workers=2) == pytest.approx(10.0)

    def test_floored_at_one_second(self):
        q = AdmissionQueue(capacity=100)
        assert q.estimate_wait_s(0.001, workers=4) == 1.0
        assert q.estimate_wait_s(0.0, workers=4) == 1.0
        assert q.estimate_wait_s(float("nan"), workers=4) == 1.0


class TestAsyncConsumption:
    def test_get_returns_queued_item(self):
        async def scenario():
            q = AdmissionQueue(capacity=4)
            q.put_batch(["x"], client="a", priority=5)
            return await q.get()

        assert asyncio.run(scenario()) == "x"

    def test_get_suspends_until_put_wakes_it(self):
        async def scenario():
            q = AdmissionQueue(capacity=4)
            getter = asyncio.create_task(q.get())
            await asyncio.sleep(0)  # park the getter on a waiter future
            q.put_batch(["late"], client="a", priority=5)
            return await asyncio.wait_for(getter, timeout=5)

        assert asyncio.run(scenario()) == "late"

    def test_each_item_wakes_one_waiter(self):
        async def scenario():
            q = AdmissionQueue(capacity=8, per_client=8)
            getters = [asyncio.create_task(q.get()) for _ in range(3)]
            await asyncio.sleep(0)
            q.put_batch(["1", "2", "3"], client="a", priority=5)
            return sorted(
                await asyncio.wait_for(asyncio.gather(*getters), timeout=5)
            )

        assert asyncio.run(scenario()) == ["1", "2", "3"]

    def test_cancelled_getter_leaves_no_stale_waiter(self):
        async def scenario():
            q = AdmissionQueue(capacity=4)
            getter = asyncio.create_task(q.get())
            await asyncio.sleep(0)
            getter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await getter
            # The slot freed by the cancelled waiter must not swallow a
            # wake-up: a fresh getter still gets the item.
            q.put_batch(["x"], client="a", priority=5)
            return await asyncio.wait_for(q.get(), timeout=5)

        assert asyncio.run(scenario()) == "x"


class TestClose:
    def test_put_after_close_raises_queue_closed(self):
        q = AdmissionQueue(capacity=4)
        q.close()
        with pytest.raises(QueueClosed):
            q.put_batch(["x"], client="a", priority=5)

    def test_close_drains_before_raising(self):
        async def scenario():
            q = AdmissionQueue(capacity=4, per_client=4)
            q.put_batch(["1", "2"], client="a", priority=5)
            q.close()
            first = await q.get()
            second = await q.get()
            with pytest.raises(QueueClosed):
                await q.get()
            return [first, second]

        assert asyncio.run(scenario()) == ["1", "2"]

    def test_close_wakes_parked_getters(self):
        async def scenario():
            q = AdmissionQueue(capacity=4)
            getter = asyncio.create_task(q.get())
            await asyncio.sleep(0)
            q.close()
            with pytest.raises(QueueClosed):
                await asyncio.wait_for(getter, timeout=5)

        asyncio.run(scenario())
