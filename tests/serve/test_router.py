"""Router behavior over a live spawned fleet: routing, merging, fleet
coalescing, the async-job proxy and the shared key contract.

Each test spins up a real ``RouterApp`` (in-process, own event-loop
thread) over real spawned ``repro-serve`` subprocesses -- the same
topology ``repro-serve-router`` runs in production.  Failure injection
lives in ``test_router_faults.py``; pure ring math in ``test_ring.py``.
"""

from __future__ import annotations

import json
import re
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.cache import cache_key
from repro.experiments.config import CASES
from repro.serve.client import ServeError
from repro.serve.protocol import GridPoint
from repro.serve.router import RouterApp, RouterConfig

pytestmark = pytest.mark.slow


def _metric_value(text: str, name: str, **labels) -> float:
    """Sum of a metric's samples matching the given labels."""
    total = 0.0
    found = False
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        if line.startswith(name + "_"):  # histogram components
            continue
        label_part = re.match(rf"{name}(?:{{(.*)}})? ([0-9eE+.-]+)", line)
        if not label_part:
            continue
        raw_labels, value = label_part.groups()
        sample = dict(
            re.findall(r'(\w+)="([^"]*)"', raw_labels or "")
        )
        if all(sample.get(k) == str(v) for k, v in labels.items()):
            total += float(value)
            found = True
    return total if found else 0.0


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url + "/metrics", timeout=10) as resp:
        return resp.read().decode("utf-8")


def _simulate_body(**overrides) -> dict:
    body = {
        "version": 1,
        "cases": ["I"],
        "protocols": ["fsa"],
        "schemes": ["crc"],
        "rounds": 2,
        "seed": 42,
        "mode": "sync",
    }
    body.update(overrides)
    return body


class TestRouting:
    def test_healthz_reports_fleet(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        doc = router.client().healthz()
        assert doc["router"] is True
        assert doc["status"] == "ok"
        assert doc["ring_nodes"] == 2
        states = {b["id"]: b["state"] for b in doc["backends"]}
        assert states == {"b0": "healthy", "b1": "healthy"}
        assert all(b["url"] for b in doc["backends"])

    def test_sync_fanout_merges_in_point_order(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        body = _simulate_body(
            cases=["I", "II"], protocols=["fsa", "bt"],
            schemes=["crc", "qcd-8"], seed=101,
        )
        doc = router.client().simulate(body)
        assert doc["state"] == "done"
        assert len(doc["results"]) == 8
        # Results come back in the request's cross-product point order,
        # exactly as a single backend would emit them.
        expected = [
            (case, protocol, scheme)
            for case in ("I", "II")
            for protocol in ("fsa", "bt")
            for scheme in ("crc", "qcd-8")
        ]
        got = [
            (r["point"]["case"]["name"], r["point"]["protocol"],
             r["point"]["scheme"])
            for r in doc["results"]
        ]
        assert got == expected
        # The fan-out genuinely used the fleet.
        assert sum(doc["served_by"].values()) == 8
        assert len(doc["served_by"]) == 2

    def test_same_point_always_routes_to_same_backend(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        client = router.client()
        owners = set()
        for _ in range(3):
            doc = client.simulate(_simulate_body(seed=77))
            (owner,) = doc["served_by"].keys()
            owners.add(owner)
        assert len(owners) == 1, f"stable key flapped between {owners}"

    def test_request_id_echoed(self, make_router):
        router = make_router(backends=1)
        router.wait_ring(1)
        status, headers, payload = router.client().request(
            "POST", "/v1/simulate", _simulate_body(),
            request_id="cli-router-echo",
        )
        assert status == 200
        lower = {k.lower(): v for k, v in headers.items()}
        assert lower["x-request-id"] == "cli-router-echo"
        assert json.loads(payload)["request_id"] == "cli-router-echo"

    def test_validation_happens_at_the_edge(self, make_router):
        router = make_router(backends=1)
        router.wait_ring(1)
        client = router.client()
        with pytest.raises(ServeError) as excinfo:
            client.simulate(_simulate_body(rounds=-1))
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.request_json("GET", "/v1/jobs/unknown-job")
        assert excinfo.value.status == 404
        status, _, _ = client.request("PUT", "/v1/simulate", {})
        assert status == 405
        # None of those crossed the backend hop.
        metrics = _scrape(router.url)
        assert _metric_value(metrics, "repro_router_forwards_total") == 0

    def test_429_passes_through_with_retry_after(self, make_router):
        # One backend with a tiny queue and slow compute: overflow sheds.
        router = make_router(
            backends=1, backend_concurrency=1, queue_capacity=1,
            compute_floor_s=0.5,
        )
        router.wait_ring(1)

        def fire(i):
            client = router.client(retries=0, timeout_s=30.0)
            try:
                status, headers, _ = client.request(
                    "POST", "/v1/simulate",
                    _simulate_body(seed=3000 + i),
                )
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                return ("exc", repr(exc))
            lower = {k.lower(): v for k, v in headers.items()}
            return (status, lower.get("retry-after"))

        with ThreadPoolExecutor(max_workers=12) as pool:
            outcomes = list(pool.map(fire, range(12)))
        statuses = [s for s, _ in outcomes]
        assert "exc" not in statuses
        assert all(s in (200, 429) for s in statuses), statuses
        shed = [ra for s, ra in outcomes if s == 429]
        assert shed, "tiny queue never shed -- test lost its overload"
        assert all(ra is not None for ra in shed)  # Retry-After forwarded


class TestFleetCoalescing:
    def test_identical_concurrent_requests_compute_once_fleet_wide(
        self, make_router
    ):
        """The acceptance criterion: N identical concurrent requests
        through the router over 2 backends run the kernel exactly once
        *fleet-wide* -- summed ``repro_mc_rounds_total`` across every
        backend equals one request's rounds."""
        rounds = 5
        router = make_router(backends=2, compute_floor_s=0.5)
        router.wait_ring(2)
        body = _simulate_body(seed=555, rounds=rounds)

        def fire(i):
            client = router.client(retries=0, timeout_s=60.0)
            status, _, payload = client.request(
                "POST", "/v1/simulate", body
            )
            return status, json.loads(payload)

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(fire, range(6)))
        assert [s for s, _ in outcomes] == [200] * 6
        # Every caller saw the same numbers.
        stats = [doc["results"][0]["stats"] for _, doc in outcomes]
        assert all(s == stats[0] for s in stats)

        per_backend = {
            b.id: _metric_value(_scrape(b.url), "repro_mc_rounds_total")
            for b in router.app.supervisor.backends
        }
        assert sum(per_backend.values()) == rounds, (
            f"fleet computed {per_backend} MC rounds for {rounds} "
            "rounds of identical work -- coalescing is not fleet-wide"
        )

    def test_distinct_points_do_spread_work(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        client = router.client()
        doc = client.simulate(_simulate_body(
            cases=["I", "II", "III"], protocols=["fsa", "bt"],
            schemes=["crc", "qcd-4", "qcd-8", "qcd-16"], seed=888,
        ))
        assert len(doc["results"]) == 24
        # 24 points over a 2-node 128-vnode ring: both backends serve.
        assert len(doc["served_by"]) == 2


class TestAsyncJobs:
    def test_job_proxied_with_router_identity(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        client = router.client()
        submitted = client.simulate(_simulate_body(
            schemes=["crc", "qcd-8"], seed=999, mode="async",
        ))
        assert submitted["state"] in ("queued", "running")
        job_id = submitted["job_id"]
        assert job_id.startswith("rjob-")
        assert submitted["location"] == f"/v1/jobs/{job_id}"
        lines = list(client.stream_job(job_id))
        kinds = [line["type"] for line in lines]
        assert kinds[0] == "job" and kinds[-1] == "done"
        assert kinds.count("result") == 2
        # Backend job ids never leak: every line speaks the router's id.
        for line in lines:
            if "job_id" in line:
                assert line["job_id"] == job_id
        assert lines[-1]["state"] == "done"

    def test_run_helper_end_to_end(self, make_router):
        router = make_router(backends=2)
        router.wait_ring(2)
        results = router.client().run(_simulate_body(
            cases=["I", "II"], seed=1234,
        ))
        assert len(results) == 2
        assert all(r["stats"]["n_tags"] is not None for r in results)

    def test_refetching_a_job_replays_results(self, make_router):
        router = make_router(backends=1)
        router.wait_ring(1)
        client = router.client()
        submitted = client.simulate(_simulate_body(seed=4321, mode="async"))
        first = list(client.stream_job(submitted["job_id"]))
        second = list(client.stream_job(submitted["job_id"]))
        first_results = [l for l in first if l["type"] == "result"]
        second_results = [l for l in second if l["type"] == "result"]
        assert first_results == second_results
        assert second[-1]["type"] == "done"


class TestKeyContract:
    def test_router_keys_match_suite_cache_keys(self):
        """The routing contract: the router's placement key for a grid
        point is byte-identical to the cache key the backend's suite
        memoizes/persists under -- otherwise fleet-wide coalescing and
        the L2 tier silently stop lining up."""
        from repro.experiments.runner import ExperimentSuite

        app = RouterApp(RouterConfig(backends=0, attach=("127.0.0.1:9",)))
        suite = ExperimentSuite(rounds=7, seed=99)
        try:
            for case_name in ("I", "III"):
                for protocol in ("fsa", "bt"):
                    for scheme in ("crc", "qcd-16"):
                        point = GridPoint(
                            case=CASES[case_name],
                            protocol=protocol,
                            scheme=scheme,
                        )
                        assert app.point_key(7, 99, point) == cache_key(
                            suite._cache_params(
                                CASES[case_name], protocol, scheme
                            )
                        )
        finally:
            suite.close()

    def test_router_requires_a_backend(self):
        with pytest.raises(ValueError):
            RouterApp(RouterConfig(backends=0, attach=()))
