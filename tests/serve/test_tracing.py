"""The serve observability contract, end to end.

Pins the header contract (X-Request-Id honored/generated/echoed on
every response including error envelopes; Server-Timing on sync
responses), the structured access log, ``/debugz``, and -- the
acceptance test -- that a single ``POST /v1/simulate`` is fully
reconstructible offline: its request id joins the access-log line, the
span tree in the ``--trace-out`` JSONL (serve spans with the engine's
``grid_point`` span nested under ``serve.compute``), the stage
histograms in ``/metrics``, and the response body.
"""

from __future__ import annotations

import json
import logging
import time

import pytest

from repro.obs.report import (
    load_trace,
    serve_attribution,
    serve_stage_stats,
    span_tree_lines,
    spans_for_request,
)

SERVE_SPAN_NAMES = {
    "serve.request",
    "serve.queue_wait",
    "serve.coalesce",
    "serve.compute",
    "serve.stream",
}


def sim_doc(**overrides) -> dict:
    doc = {
        "version": 1,
        "cases": ["I"],
        "protocols": ["fsa"],
        "schemes": ["crc"],
        "rounds": 2,
        "seed": 11,
        "mode": "sync",
        "client": "tester",
    }
    doc.update(overrides)
    return doc


def _lower(headers: dict) -> dict:
    return {k.lower(): v for k, v in headers.items()}


def _wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class _ListHandler(logging.Handler):
    def __init__(self) -> None:
        super().__init__()
        self.lines: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.lines.append(record.getMessage())


@pytest.fixture
def access_lines():
    """Capture the structured access log (attaching a handler enables it)."""
    logger = logging.getLogger("repro.serve.access")
    handler = _ListHandler()
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        yield handler.lines
    finally:
        logger.removeHandler(handler)


def _access_record(lines: list[str], request_id: str) -> dict:
    assert _wait_for(
        lambda: any(request_id in line for line in list(lines))
    ), f"no access-log line for {request_id}"
    for line in list(lines):
        record = json.loads(line)
        if record["request_id"] == request_id:
            return record
    raise AssertionError("unreachable")


class TestRequestIdHeader:
    def test_valid_client_id_honored_and_echoed(self, app):
        status, headers, _ = app.client().request(
            "GET", "/healthz", request_id="cli-mine.01"
        )
        assert status == 200
        assert _lower(headers)["x-request-id"] == "cli-mine.01"

    def test_invalid_client_id_replaced_with_generated(self, app):
        status, headers, _ = app.client().request(
            "GET", "/healthz", request_id="bad id with spaces!"
        )
        assert status == 200
        rid = _lower(headers)["x-request-id"]
        assert rid.startswith("req-")

    def test_missing_id_generates_one(self, app):
        # Bypass ServeClient's own id generation with a raw request.
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", app.port, timeout=30)
        try:
            conn.request("GET", "/healthz", headers={"Connection": "close"})
            resp = conn.getresponse()
            resp.read()
            rid = resp.getheader("X-Request-Id")
        finally:
            conn.close()
        assert rid is not None and rid.startswith("req-")

    def test_echoed_on_404_error_envelope(self, app):
        status, headers, payload = app.client().request(
            "GET", "/nope", request_id="cli-err404"
        )
        assert status == 404
        assert _lower(headers)["x-request-id"] == "cli-err404"
        body = json.loads(payload)
        assert body["request_id"] == "cli-err404"
        assert body["error"]["code"] == "not_found"

    def test_echoed_on_400_invalid_body(self, app):
        client = app.client()
        status, headers, payload = client.request(
            "POST", "/v1/simulate", {"version": 99}, request_id="cli-err400"
        )
        assert status == 400
        assert _lower(headers)["x-request-id"] == "cli-err400"
        assert json.loads(payload)["request_id"] == "cli-err400"

    def test_sync_response_body_carries_id(self, app):
        status, _headers, payload = app.client().request(
            "POST", "/v1/simulate", sim_doc(), request_id="cli-sync1"
        )
        assert status == 200
        body = json.loads(payload)
        assert body["request_id"] == "cli-sync1"
        assert len(body["results"]) == 1


class TestServerTiming:
    def test_sync_simulate_reports_stage_breakdown(self, app):
        client = app.client()
        status, _headers, _ = client.request(
            "POST", "/v1/simulate", sim_doc()
        )
        assert status == 200
        timing = client.last_server_timing
        # "stream" is measured while the response is written, so it can
        # only appear in the access log, never in this header.
        assert {"queue_wait", "coalesce", "compute"} <= set(timing)
        assert all(seconds >= 0.0 for seconds in timing.values())
        # compute happens inside the coalesce lease, never outside it.
        assert timing["compute"] <= timing["coalesce"] + 0.05

    def test_health_and_error_responses_carry_no_timing(self, app):
        client = app.client()
        client.request("GET", "/healthz")
        assert client.last_server_timing == {}


class TestDebugz:
    def test_schema(self, app):
        doc = app.client().request_json("GET", "/debugz")
        assert set(doc) >= {
            "status",
            "uptime_s",
            "obs_enabled",
            "queue",
            "inflight",
            "coalesce",
            "jobs",
            "recent_slowest",
        }
        assert doc["status"] == "ok"
        assert doc["obs_enabled"] is True
        assert set(doc["queue"]) >= {"depth", "capacity", "by_priority",
                                     "by_client", "closed"}
        assert set(doc["coalesce"]) >= {"in_flight", "keys", "hits", "leads"}
        assert doc["jobs"] == {"held": 0, "by_state": {}}
        assert doc["inflight"] == []

    def test_recent_slowest_names_finished_requests(self, app):
        client = app.client()
        client.request("POST", "/v1/simulate", sim_doc(),
                       request_id="cli-slowme")
        doc = client.request_json("GET", "/debugz")
        recent = doc["recent_slowest"]
        ours = [r for r in recent if r["request_id"] == "cli-slowme"]
        assert ours, f"cli-slowme not in recent_slowest: {recent}"
        assert ours[0]["route"] == "simulate"
        assert ours[0]["status"] == 200
        assert ours[0]["duration_s"] > 0
        assert ours[0]["client"] == "tester"
        assert doc["jobs"]["held"] == 1
        assert doc["jobs"]["by_state"] == {"done": 1}

    def test_works_with_obs_disabled(self, make_app):
        handle = make_app(concurrency=1, mc_workers=1, obs_enabled=False)
        client = handle.client()
        doc = client.request_json("GET", "/debugz")
        assert doc["obs_enabled"] is False
        # The pipeline itself still serves and still reports timings
        # (stage bookkeeping is request-local, not observability).
        status, _h, _b = client.request("POST", "/v1/simulate", sim_doc())
        assert status == 200
        assert "compute" in client.last_server_timing


class TestAccessLog:
    def test_line_emitted_with_stages_and_coalesce(self, app, access_lines):
        app.client().request("POST", "/v1/simulate", sim_doc(),
                             request_id="cli-log1")
        record = _access_record(access_lines, "cli-log1")
        assert record["method"] == "POST"
        assert record["path"] == "/v1/simulate"
        assert record["route"] == "simulate"
        assert record["status"] == 200
        assert record["client"] == "tester"
        assert record["priority"] == 5
        assert record["mode"] == "sync"
        assert record["duration_s"] > 0
        assert {"queue_wait", "coalesce", "compute", "stream"} <= set(
            record["stages_s"]
        )
        assert record["coalesce"] == {"computed": 1}

    def test_error_requests_logged_too(self, app, access_lines):
        app.client().request("GET", "/nope", request_id="cli-log404")
        record = _access_record(access_lines, "cli-log404")
        assert record["route"] == "unmatched"
        assert record["status"] == 404


class TestEndToEndReconstruction:
    """The PR's acceptance criterion: one request, four joinable views."""

    def test_sync_request_reconstructible_offline(
        self, make_app, tmp_path, access_lines
    ):
        trace_path = tmp_path / "trace.jsonl"
        handle = make_app(
            concurrency=2, mc_workers=1, trace_out=str(trace_path)
        )
        rid = "cli-e2e-accept"
        client = handle.client()
        status, headers, payload = client.request(
            "POST", "/v1/simulate", sim_doc(), request_id=rid
        )

        # View 1: the response itself (header + body + Server-Timing).
        assert status == 200
        assert _lower(headers)["x-request-id"] == rid
        body = json.loads(payload)
        assert body["request_id"] == rid
        assert len(body["results"]) == 1
        assert body["results"][0]["source"] == "computed"
        timing = client.last_server_timing
        assert {"queue_wait", "coalesce", "compute"} <= set(timing)

        # View 2: the stage histograms in /metrics.
        metrics = client.metrics_text()
        for stage in ("queue_wait", "coalesce", "compute", "stream"):
            assert (
                f'repro_serve_stage_seconds_count{{stage="{stage}"}} 1'
                in metrics
            ), f"missing stage histogram for {stage}"

        # View 3: the access log, joined on the request id.
        record = _access_record(access_lines, rid)
        assert record["status"] == 200
        # The access line sees every header stage plus the stream stage
        # (measured while the response body was being written).
        assert set(timing) <= set(record["stages_s"])
        assert "stream" in record["stages_s"]

        # Drain flushes the JSONL trace sink.
        handle.shutdown()

        # View 4: the span tree, joined on the same id.
        records = load_trace(trace_path)
        spans = spans_for_request(records, rid)
        names = {s["name"] for s in spans}
        assert SERVE_SPAN_NAMES <= names
        assert "grid_point" in names, (
            "engine spans did not nest under the request trace "
            "(contextvar propagation across to_thread broke)"
        )
        tree = span_tree_lines(spans)

        # serve.request roots the tree; the engine span nests under
        # serve.compute which nests under serve.coalesce.  Tree lines
        # are "<duration> ms  <two spaces per depth><name>".
        def depth(name: str) -> int:
            (line,) = [l for l in tree if l.endswith(name)]
            tail = line.split("ms  ", 1)[1]
            return (len(tail) - len(name)) // 2

        assert depth("serve.request") == 0
        assert depth("serve.queue_wait") == 1
        assert depth("serve.coalesce") == 1
        assert depth("serve.compute") == 2
        assert depth("grid_point") == 3
        assert depth("serve.stream") == 1

        # And the analyzer's summary views agree.
        stats = serve_stage_stats(records)
        assert stats["serve.request"]["n"] >= 1
        entries = [
            e for e in serve_attribution(records) if e["request_id"] == rid
        ]
        assert entries and entries[0]["total_s"] > 0
        assert entries[0]["stages_s"]["serve.compute"] > 0

    def test_async_job_joins_admitting_request(self, make_app, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        handle = make_app(
            concurrency=2, mc_workers=1, trace_out=str(trace_path)
        )
        rid = "cli-e2e-async"
        client = handle.client()
        status, headers, payload = client.request(
            "POST", "/v1/simulate", sim_doc(mode="async"), request_id=rid
        )
        assert status == 202
        assert _lower(headers)["x-request-id"] == rid
        submitted = json.loads(payload)
        assert submitted["request_id"] == rid

        # The NDJSON header line carries the *admitting* request's id --
        # the offline join key -- while the GET echoes its own id.
        lines = list(client.stream_job(submitted["job_id"]))
        assert lines[0]["type"] == "job"
        assert lines[0]["request_id"] == rid
        assert lines[-1]["type"] == "done"
        assert lines[-1]["state"] == "done"
        results = [line for line in lines if line.get("type") == "result"]
        assert len(results) == 1

        handle.shutdown()
        records = load_trace(trace_path)
        spans = spans_for_request(records, rid)
        names = {s["name"] for s in spans}
        # The point's pipeline spans are stamped with the admitting id
        # even though the 202 closed serve.request before compute ran.
        assert {"serve.request", "serve.coalesce", "serve.compute"} <= names
