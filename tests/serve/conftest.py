"""Shared fixtures for the serve suite.

The server enables the process-global observability state on start, so
every test here begins and ends clean, and an in-process app fixture
runs the full asyncio stack on a background thread with an ephemeral
port (the client side is blocking, which is exactly how real clients
hit the service).
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

import pytest

from repro import obs
from repro.serve.client import ServeClient
from repro.serve.router import RouterApp, RouterConfig
from repro.serve.server import ServeApp, ServeConfig


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class AppHandle:
    """A running ServeApp on its own event-loop thread."""

    def __init__(self, config: ServeConfig) -> None:
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.app: ServeApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("server did not start within 20s")
        if self._failure is not None:
            raise self._failure

    def _run(self, config: ServeConfig) -> None:
        async def amain() -> None:
            try:
                app = ServeApp(config)
                await app.start()
                self.app = app
                self.loop = asyncio.get_running_loop()
                self.port = app.port
            except BaseException as exc:  # surface startup failures
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await app.wait_closed()

        asyncio.run(amain())

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.url, **kwargs)

    def call_soon(self, fn, *args) -> None:
        assert self.loop is not None
        self.loop.call_soon_threadsafe(fn, *args)

    def shutdown(self, timeout: float = 30.0) -> None:
        if self.app is not None and self.loop is not None:
            if not self._thread.is_alive():
                return
            self.loop.call_soon_threadsafe(self.app.begin_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread failed to drain"


@pytest.fixture
def make_app():
    """Factory fixture: start apps with custom configs; all drained on exit."""
    handles: list[AppHandle] = []

    def factory(**overrides) -> AppHandle:
        config = ServeConfig(port=0, **overrides)
        handle = AppHandle(config)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.shutdown()


@pytest.fixture
def app(make_app) -> AppHandle:
    """A default small server: 2 workers, serial MC execution."""
    return make_app(concurrency=2, mc_workers=1)


class RouterHandle:
    """A running RouterApp (with its spawned backend fleet) on its own
    event-loop thread.  Mirrors :class:`AppHandle`; adds fleet helpers
    the fault-injection tests drive (kill/terminate a backend, wait for
    the ring to reach a size)."""

    def __init__(self, config: RouterConfig) -> None:
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.app: RouterApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(60):
            raise RuntimeError("router did not start within 60s")
        if self._failure is not None:
            raise self._failure

    def _run(self, config: RouterConfig) -> None:
        async def amain() -> None:
            try:
                app = RouterApp(config)
                await app.start()
                self.app = app
                self.loop = asyncio.get_running_loop()
                self.port = app.port
            except BaseException as exc:  # surface startup failures
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await app.wait_closed()

        asyncio.run(amain())

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.url, **kwargs)

    def backend(self, backend_id: str):
        assert self.app is not None
        backend = self.app.supervisor.by_id(backend_id)
        assert backend is not None, f"no backend {backend_id!r}"
        return backend

    def wait_ring(self, n: int, timeout: float = 60.0) -> None:
        """Block until exactly ``n`` backends sit on the ring."""
        assert self.app is not None
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.app.ring) == n:
                return
            time.sleep(0.05)
        raise AssertionError(
            f"ring never reached {n} nodes (at {len(self.app.ring)})"
        )

    def kill_backend(self, backend_id: str) -> int:
        """SIGKILL a spawned backend's process; returns its pid.

        Raw ``os.kill`` (not the asyncio transport's ``kill()``): the
        router's loop runs on another thread, and a signal is the one
        cross-thread-safe way to take a process down mid-request.
        """
        process = self.backend(backend_id).process
        assert process is not None
        os.kill(process.pid, signal.SIGKILL)
        return process.pid

    def terminate_backend(self, backend_id: str) -> int:
        """SIGTERM (drain) a spawned backend's process; returns its pid."""
        process = self.backend(backend_id).process
        assert process is not None
        os.kill(process.pid, signal.SIGTERM)
        return process.pid

    def shutdown(self, timeout: float = 60.0) -> None:
        if self.app is not None and self.loop is not None:
            if not self._thread.is_alive():
                return
            self.loop.call_soon_threadsafe(self.app.begin_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "router thread failed to drain"


@pytest.fixture
def make_router(tmp_path):
    """Factory fixture: start routers with custom configs; drained on exit.

    Unless overridden, backends get a shared L2 cache directory under
    the test's tmp_path and fast health probing so ejection/re-admission
    edges land within test timeouts.
    """
    handles: list[RouterHandle] = []

    def factory(**overrides) -> RouterHandle:
        overrides.setdefault("cache_dir", str(tmp_path / "l2"))
        overrides.setdefault("health_interval_s", 0.1)
        overrides.setdefault("restart_backoff_s", 0.1)
        config = RouterConfig(port=0, **overrides)
        handle = RouterHandle(config)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.shutdown()
