"""Shared fixtures for the serve suite.

The server enables the process-global observability state on start, so
every test here begins and ends clean, and an in-process app fixture
runs the full asyncio stack on a background thread with an ephemeral
port (the client side is blocking, which is exactly how real clients
hit the service).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import obs
from repro.serve.client import ServeClient
from repro.serve.server import ServeApp, ServeConfig


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class AppHandle:
    """A running ServeApp on its own event-loop thread."""

    def __init__(self, config: ServeConfig) -> None:
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.app: ServeApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("server did not start within 20s")
        if self._failure is not None:
            raise self._failure

    def _run(self, config: ServeConfig) -> None:
        async def amain() -> None:
            try:
                app = ServeApp(config)
                await app.start()
                self.app = app
                self.loop = asyncio.get_running_loop()
                self.port = app.port
            except BaseException as exc:  # surface startup failures
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await app.wait_closed()

        asyncio.run(amain())

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.url, **kwargs)

    def call_soon(self, fn, *args) -> None:
        assert self.loop is not None
        self.loop.call_soon_threadsafe(fn, *args)

    def shutdown(self, timeout: float = 30.0) -> None:
        if self.app is not None and self.loop is not None:
            if not self._thread.is_alive():
                return
            self.loop.call_soon_threadsafe(self.app.begin_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread failed to drain"


@pytest.fixture
def make_app():
    """Factory fixture: start apps with custom configs; all drained on exit."""
    handles: list[AppHandle] = []

    def factory(**overrides) -> AppHandle:
        config = ServeConfig(port=0, **overrides)
        handle = AppHandle(config)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.shutdown()


@pytest.fixture
def app(make_app) -> AppHandle:
    """A default small server: 2 workers, serial MC execution."""
    return make_app(concurrency=2, mc_workers=1)
