"""End-to-end service tests against a live in-process server.

Each test talks to a real ``ServeApp`` (ephemeral port, background
event-loop thread -- see ``conftest.AppHandle``) through the blocking
:class:`~repro.serve.client.ServeClient`, exactly the way external
clients do.  The drain test runs ``python -m repro.serve`` as a real
subprocess and SIGTERMs it mid-request.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentSuite
from repro.serve.client import ServeClient, ServeError
from repro.sim.export import nan_to_none

SIM_DOC = {
    "version": 1,
    "cases": ["I"],
    "protocols": ["fsa"],
    "schemes": ["crc", "qcd-8"],
    "rounds": 3,
    "seed": 42,
    "mode": "sync",
}


def _metric_value(text: str, name: str, **labels) -> float:
    """Sum a counter/gauge from Prometheus exposition text."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        metric, _, value = line.rpartition(" ")
        if all(f'{k}="{v}"' in metric for k, v in labels.items()):
            total += float(value)
    return total


class TestBasics:
    def test_healthz(self, app):
        doc = app.client().healthz()
        assert doc["status"] == "ok"
        assert doc["protocol_version"] == 1

    def test_unknown_route_is_404(self, app):
        with pytest.raises(ServeError) as excinfo:
            app.client().request_json("GET", "/nope")
        assert (excinfo.value.status, excinfo.value.code) == (404, "not_found")

    def test_wrong_method_is_405_with_allow(self, app):
        status, headers, _body = app.client().request("PUT", "/healthz")
        assert status == 405
        assert {k.lower(): v for k, v in headers.items()}["allow"] == "GET"

    def test_bad_json_body_is_400(self, app):
        status, _headers, body = app.client().request(
            "POST", "/v1/simulate", None
        )
        # No body at all: not valid JSON either.
        assert status == 400
        assert json.loads(body)["error"]["code"] == "invalid_request"

    def test_malformed_request_is_typed_400(self, app):
        with pytest.raises(ServeError) as excinfo:
            app.client().simulate(dict(SIM_DOC, rounds=True))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"
        assert excinfo.value.envelope["error"]["field"] == "rounds"

    def test_metrics_exposition(self, app):
        client = app.client()
        client.healthz()
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert (
            _metric_value(text, "repro_serve_requests_total", route="healthz")
            >= 1
        )


class TestSimulate:
    def test_sync_results_field_identical_to_suite(self, app):
        resp = app.client().simulate(SIM_DOC)
        assert resp["state"] == "done"
        assert len(resp["results"]) == 2
        with ExperimentSuite(rounds=3, seed=42) as suite:
            for line in resp["results"]:
                expected = nan_to_none(
                    asdict(
                        suite.run("I", line["point"]["protocol"], line["point"]["scheme"])
                    )
                )
                assert line["stats"] == expected

    def test_async_stream_matches_sync_results(self, app):
        client = app.client()
        sync = client.simulate(dict(SIM_DOC, seed=77))
        lines = client.run(dict(SIM_DOC, seed=77))
        by_point_stream = {
            json.dumps(l["point"], sort_keys=True): l["stats"] for l in lines
        }
        by_point_sync = {
            json.dumps(l["point"], sort_keys=True): l["stats"]
            for l in sync["results"]
        }
        assert by_point_stream == by_point_sync

    def test_stream_shape(self, app):
        client = app.client()
        submitted = client.simulate(dict(SIM_DOC, mode="async", seed=5))
        assert submitted["location"] == f"/v1/jobs/{submitted['job_id']}"
        lines = list(client.stream_job(submitted["job_id"]))
        assert lines[0]["type"] == "job"
        assert [l["type"] for l in lines[1:-1]] == ["result"] * 2
        assert lines[-1]["type"] == "done"
        assert lines[-1]["state"] == "done"
        assert lines[-1]["elapsed_s"] is not None

    def test_unknown_job_is_404(self, app):
        with pytest.raises(ServeError) as excinfo:
            list(app.client().stream_job("job-ffffffffffffffff"))
        assert excinfo.value.status == 404

    def test_repeat_request_served_from_memo(self, app):
        client = app.client()
        doc = dict(SIM_DOC, seed=123)
        first = client.simulate(doc)
        second = client.simulate(doc)
        assert {r["source"] for r in first["results"]} == {"computed"}
        assert {r["source"] for r in second["results"]} == {"memo"}
        # Results arrive in completion order, which is nondeterministic
        # across concurrent workers -- compare keyed by grid point.
        def by_point(resp):
            return {
                json.dumps(r["point"], sort_keys=True): r["stats"]
                for r in resp["results"]
            }

        assert by_point(first) == by_point(second)


class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self, make_app):
        """The acceptance criterion: N identical concurrent requests for
        one grid point trigger exactly one kernel computation.

        The compute floor keeps the leader in flight long enough for
        every duplicate to arrive, so the Monte-Carlo rounds counter
        (exact, folded from the engine) must equal ``rounds`` -- one
        kernel run total -- and the coalesce-hit counter picks up the
        rest.
        """
        app = make_app(concurrency=16, compute_floor_s=0.5)
        n_clients, rounds = 8, 3
        doc = {
            "version": 1,
            "cases": ["I"],
            "protocols": ["fsa"],
            "schemes": ["qcd-8"],
            "rounds": rounds,
            "seed": 999,
            "mode": "sync",
        }
        barrier = threading.Barrier(n_clients)

        def call(i: int) -> dict:
            client = app.client(retries=0, timeout_s=60.0)
            barrier.wait(timeout=20)
            return client.simulate(dict(doc, client=f"c{i}"))

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            responses = [f.result() for f in [pool.submit(call, i) for i in range(n_clients)]]

        stats = [r["results"][0]["stats"] for r in responses]
        assert all(s == stats[0] for s in stats)
        sources = sorted(r["results"][0]["source"] for r in responses)
        text = app.client().metrics_text()
        mc_rounds = _metric_value(text, "repro_mc_rounds_total")
        assert mc_rounds == rounds, (
            f"expected exactly one kernel computation ({rounds} MC rounds), "
            f"saw {mc_rounds}; sources={sources}"
        )
        assert _metric_value(text, "repro_serve_coalesce_hits_total") >= 1
        assert sources.count("computed") == 1


class TestBackpressure:
    def test_overload_sheds_429_with_retry_after(self, make_app):
        # One slow worker, a 2-point queue: the third-plus concurrent
        # request must shed as 429 + Retry-After, never 500.
        app = make_app(
            concurrency=1,
            queue_capacity=2,
            per_client=2,
            compute_floor_s=1.0,
        )
        barrier = threading.Barrier(8)

        def call(i: int):
            client = app.client(retries=0, timeout_s=60.0)
            barrier.wait(timeout=20)
            doc = {
                "version": 1,
                "cases": ["I"],
                "protocols": ["fsa"],
                "schemes": ["qcd-4"],
                "rounds": 1,
                "seed": 4000 + i,  # distinct grid points: no coalescing
                "mode": "sync",
                "client": f"c{i}",
            }
            return client.request("POST", "/v1/simulate", doc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = [f.result() for f in [pool.submit(call, i) for i in range(8)]]

        statuses = sorted(status for status, _, _ in outcomes)
        assert 429 in statuses
        assert all(status in (200, 429) for status in statuses), statuses
        rejected = next(o for o in outcomes if o[0] == 429)
        headers = {k.lower(): v for k, v in rejected[1].items()}
        assert int(headers["retry-after"]) >= 1
        body = json.loads(rejected[2])
        assert body["error"]["code"] == "overloaded"

    def test_client_quota_is_per_client(self, make_app):
        app = make_app(
            concurrency=1,
            queue_capacity=100,
            per_client=1,
            compute_floor_s=1.0,
        )
        client = app.client(retries=0, timeout_s=60.0)
        doc = {
            "version": 1,
            "cases": ["I", "II"],  # 2 points > per-client quota of 1
            "protocols": ["fsa"],
            "schemes": ["crc"],
            "rounds": 1,
            "mode": "async",
            "client": "greedy",
        }
        status, headers, body = client.request("POST", "/v1/simulate", doc)
        assert status == 429
        assert "quota" in json.loads(body)["error"]["message"]

    def test_hundred_concurrent_inflight_zero_5xx(self, make_app):
        """The acceptance criterion: >= 100 concurrent in-flight simulate
        requests, all answered, zero 500s."""
        app = make_app(
            concurrency=8,
            queue_capacity=256,
            per_client=256,
            mc_workers=1,
        )
        n = 120
        barrier = threading.Barrier(n)
        statuses: list[int] = []
        lock = threading.Lock()

        def call(i: int) -> None:
            client = app.client(retries=0, timeout_s=120.0)
            doc = {
                "version": 1,
                "cases": ["I"],
                "protocols": ["fsa"],
                "schemes": ["qcd-8"],
                "rounds": 2,
                "seed": i % 10,  # mix of fresh and coalescable points
                "mode": "sync",
                "client": f"c{i % 16}",
            }
            barrier.wait(timeout=60)
            status, _, _ = client.request("POST", "/v1/simulate", doc)
            with lock:
                statuses.append(status)

        with ThreadPoolExecutor(max_workers=n) as pool:
            futures = [pool.submit(call, i) for i in range(n)]
            for fut in futures:
                fut.result()

        assert len(statuses) == n
        assert not [s for s in statuses if s >= 500], sorted(set(statuses))
        assert statuses.count(200) >= 100


@pytest.mark.slow
class TestDrain:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--port",
                "0",
                "--concurrency",
                "2",
                "--compute-floor",
                "1.0",
                "--drain-grace",
                "30",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "repro-serve listening on" in banner, banner
            host_port = banner.split("listening on ")[1].split(" ")[0]
            url = f"http://{host_port}"

            result_box: dict = {}

            def slow_request():
                client = ServeClient(url, retries=0, timeout_s=60.0)
                result_box["resp"] = client.simulate(
                    {
                        "version": 1,
                        "cases": ["I"],
                        "protocols": ["fsa"],
                        "schemes": ["qcd-8"],
                        "rounds": 1,
                        "seed": 31337,
                        "mode": "sync",
                    }
                )

            t = threading.Thread(target=slow_request)
            t.start()
            time.sleep(0.4)  # request admitted; compute floor holds it
            process.send_signal(signal.SIGTERM)

            # New work during the drain is shed with 503 draining.
            shed = ServeClient(url, retries=0, timeout_s=10.0)
            status, headers, body = shed.request(
                "POST",
                "/v1/simulate",
                {
                    "version": 1,
                    "cases": ["I"],
                    "protocols": ["fsa"],
                    "schemes": ["crc"],
                    "rounds": 1,
                    "mode": "sync",
                },
            )
            assert status == 503
            assert json.loads(body)["error"]["code"] == "draining"

            t.join(timeout=60)
            assert not t.is_alive(), "in-flight request never completed"
            assert result_box["resp"]["state"] == "done"

            process.wait(timeout=60)
            assert process.returncode == 0
            tail = process.stdout.read()
            assert "repro-serve drained; exiting" in tail
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
