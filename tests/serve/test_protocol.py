"""Wire-schema tests: golden round-trips plus malformed-input properties.

The golden file pins the canonical wire form of representative simulate
requests and the exact error (code, field, HTTP status) for a catalog of
malformed bodies.  Any schema change -- renamed field, changed default,
loosened validation -- fails here first.

Regenerate after an *intentional* schema change with::

    PYTHONPATH=src python tests/serve/test_protocol.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given

from repro.serve.protocol import (
    ERROR_STATUS,
    PROTOCOL_VERSION,
    GridPoint,
    ProtocolError,
    SimulateRequest,
    done_line,
    error_envelope,
    job_envelope,
    parse_scheme,
    parse_simulate_request,
    result_line,
    sync_response,
)
from repro.verify.strategies import (
    malformed_simulate_requests,
    simulate_requests,
)

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "data" / "golden_serve_protocol.json"
)

#: Representative valid requests: minimal, fully-specified, inline case,
#: multi-axis grid.  The golden file stores each one's canonical form.
VALID_DOCS: list[dict] = [
    {
        "version": 1,
        "cases": ["I"],
        "protocols": ["fsa"],
        "schemes": ["crc"],
    },
    {
        "version": 1,
        "cases": ["I", "II"],
        "protocols": ["fsa", "bt"],
        "schemes": ["crc", "qcd-8"],
        "rounds": 25,
        "seed": 7,
        "mode": "async",
        "priority": 9,
        "client": "golden-suite",
    },
    {
        "version": 1,
        "cases": [{"name": "tiny", "n_tags": 3, "frame_size": 4}],
        "protocols": ["bt"],
        "schemes": ["qcd-16"],
        "rounds": 1,
        "seed": 0,
    },
]

#: Malformed body -> the exact typed error we promise for it.
MALFORMED_DOCS: list[dict] = [
    {"doc": None, "label": "null body"},
    {"doc": ["not", "an", "object"], "label": "array body"},
    {"doc": {"version": 1, "cases": ["I"]}, "label": "missing axes"},
    {
        "doc": {
            "version": 2,
            "cases": ["I"],
            "protocols": ["fsa"],
            "schemes": ["crc"],
        },
        "label": "future version",
    },
    {
        "doc": {
            "version": 1,
            "cases": ["V"],
            "protocols": ["fsa"],
            "schemes": ["crc"],
        },
        "label": "unknown named case",
    },
    {
        "doc": {
            "version": 1,
            "cases": ["I"],
            "protocols": ["fsa"],
            "schemes": ["qcd-08"],
        },
        "label": "non-canonical scheme",
    },
    {
        "doc": {
            "version": 1,
            "cases": ["I"],
            "protocols": ["fsa"],
            "schemes": ["crc"],
            "rounds": True,
        },
        "label": "boolean rounds",
    },
    {
        "doc": {
            "version": 1,
            "cases": ["I"],
            "protocols": ["fsa"],
            "schemes": ["crc"],
            "shard": 4,
        },
        "label": "unknown key",
    },
]


def _canonical(doc: dict) -> dict:
    return parse_simulate_request(doc).to_wire()


def _error_record(doc: object) -> dict:
    with pytest.raises(ProtocolError) as excinfo:
        parse_simulate_request(doc)
    exc = excinfo.value
    return {
        "code": exc.code,
        "status": exc.status,
        "field": exc.field,
        "envelope": error_envelope(exc),
    }


def _build_golden() -> dict:
    records = []
    for doc in VALID_DOCS:
        canonical = _canonical(doc)
        records.append({"request": doc, "canonical": canonical})
    errors = []
    for entry in MALFORMED_DOCS:
        exc = None
        try:
            parse_simulate_request(entry["doc"])
        except ProtocolError as e:
            exc = e
        assert exc is not None, f"{entry['label']} unexpectedly parsed"
        errors.append(
            {
                "label": entry["label"],
                "doc": entry["doc"],
                "code": exc.code,
                "status": exc.status,
                "field": exc.field,
                "envelope": error_envelope(exc),
            }
        )
    return {"version": PROTOCOL_VERSION, "valid": records, "errors": errors}


class TestGolden:
    def test_golden_file_current(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden == _build_golden(), (
            "wire schema drifted from tests/data/golden_serve_protocol.json; "
            "if intentional, regenerate with "
            "`PYTHONPATH=src python tests/serve/test_protocol.py`"
        )

    def test_canonical_form_is_idempotent(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        for record in golden["valid"]:
            assert _canonical(record["canonical"]) == record["canonical"]


class TestParsing:
    def test_defaults(self):
        req = parse_simulate_request(VALID_DOCS[0])
        assert (req.rounds, req.seed, req.mode, req.priority, req.client) == (
            10,
            2010,
            "sync",
            5,
            "anonymous",
        )

    def test_grid_is_cross_product_in_axis_order(self):
        req = parse_simulate_request(VALID_DOCS[1])
        labels = [(p.case.name, p.protocol, p.scheme) for p in req.points]
        assert labels == [
            (c, p, s)
            for c in ("I", "II")
            for p in ("fsa", "bt")
            for s in ("crc", "qcd-8")
        ]

    def test_named_and_inline_duplicate_rejected(self):
        doc = {
            "version": 1,
            "cases": ["I", {"name": "I", "n_tags": 50, "frame_size": 30}],
            "protocols": ["fsa"],
            "schemes": ["crc"],
        }
        with pytest.raises(ProtocolError) as excinfo:
            parse_simulate_request(doc)
        assert excinfo.value.code == "invalid_request"

    @pytest.mark.parametrize("scheme", ["crc", "qcd-1", "qcd-8", "qcd-64"])
    def test_scheme_accepts_canonical(self, scheme):
        assert parse_scheme(scheme) == scheme

    @pytest.mark.parametrize(
        "scheme", ["qcd-0", "qcd-65", "qcd-08", "qcd-", "qcd", "CRC", "", "qcd-8 "]
    )
    def test_scheme_rejects_non_canonical(self, scheme):
        with pytest.raises(ProtocolError):
            parse_scheme(scheme)

    def test_error_codes_map_to_4xx_or_5xx(self):
        for code, status in ERROR_STATUS.items():
            assert 400 <= status < 600, code


class TestEnvelopes:
    def test_result_line_scrubs_nan(self):
        point = parse_simulate_request(VALID_DOCS[0]).points[0]
        line = result_line(point, {"throughput": float("nan")}, "computed")
        assert line["stats"]["throughput"] is None
        json.dumps(line, allow_nan=False)  # RFC 8259 clean

    def test_done_line_scrubs_nan_elapsed(self):
        line = done_line("job-1", "done", float("nan"))
        assert line["elapsed_s"] is None

    def test_job_envelope_location(self):
        env = job_envelope("job-abc", "queued", 4, 0)
        assert env["location"] == "/v1/jobs/job-abc"
        assert env["version"] == PROTOCOL_VERSION

    def test_sync_response_shape(self):
        resp = sync_response("job-1", "done", [], 0.5)
        assert set(resp) == {"version", "job_id", "state", "results", "elapsed_s"}


class TestProperties:
    @given(doc=simulate_requests())
    def test_valid_requests_parse_and_round_trip(self, doc):
        req = parse_simulate_request(doc)
        assert isinstance(req, SimulateRequest)
        assert 1 <= len(req.points) <= 16
        assert all(isinstance(p, GridPoint) for p in req.points)
        # Canonical form re-parses to the identical request.
        canonical = req.to_wire()
        assert parse_simulate_request(canonical) == req
        json.dumps(canonical, allow_nan=False)

    @given(case=malformed_simulate_requests())
    def test_malformed_requests_raise_typed_400s_only(self, case):
        rule, doc = case
        try:
            parse_simulate_request(doc)
        except ProtocolError as exc:
            assert 400 <= exc.status < 500, rule
            envelope = error_envelope(exc)
            assert envelope["error"]["code"] == exc.code
            json.dumps(envelope, allow_nan=False)
        else:  # pragma: no cover - a parse here is the bug being hunted
            pytest.fail(f"malformed request ({rule}) parsed successfully")


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN_PATH.write_text(
        json.dumps(_build_golden(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
