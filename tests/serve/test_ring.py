"""Properties of the consistent-hash ring (:mod:`repro.serve.ring`).

The two guarantees the fleet depends on, stated as properties:

* **balance** -- with vnodes, each of N backends owns roughly 1/N of a
  large key population (bounded relative deviation);
* **minimal disruption** -- removing (or adding) one of N backends
  remaps *only* the keys owned by the affected node, ≈K/N of them; every
  other key keeps its owner.  This is the property that makes backend
  churn cheap: the rest of the fleet's memo/L2 locality survives.

Keys are a fixed deterministic sample (the ring hashes them anyway), so
Hypothesis explores the *node-set* space -- names, sizes, orderings --
without making the uniformity assertions flaky.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.ring import DEFAULT_VNODES, EmptyRingError, HashRing

#: Deterministic key population for spread/disruption measurements:
#: large enough that a 128-vnode ring's spread concentrates, fixed so
#: bounds never flake.
KEYS = tuple(f"key-{i:05d}" for i in range(2000))

node_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
node_sets = st.lists(node_names, min_size=1, max_size=8, unique=True)


class TestRingBasics:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(EmptyRingError):
            ring.owner("anything")
        with pytest.raises(EmptyRingError):
            ring.owners("anything", 1)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(k) == "only" for k in KEYS[:100])

    def test_add_remove_idempotent(self):
        ring = HashRing()
        assert ring.add("a")
        assert not ring.add("a")  # second add is a no-op
        assert ring.remove("a")
        assert not ring.remove("a")
        assert len(ring) == 0

    def test_contains_and_nodes(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "b" in ring and "c" not in ring
        assert ring.nodes == frozenset({"a", "b"})

    def test_owner_deterministic_across_instances(self):
        # Placement is a pure function of (node set, vnodes): two rings
        # built in different orders agree on every key.
        r1 = HashRing(["a", "b", "c"])
        r2 = HashRing(["c", "a", "b"])
        assert [r1.owner(k) for k in KEYS[:200]] == [
            r2.owner(k) for k in KEYS[:200]
        ]

    def test_owners_fallback_order(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS[:50]:
            order = ring.owners(key, 3)
            assert len(order) == 3
            assert len(set(order)) == 3  # distinct
            assert order[0] == ring.owner(key)
        # Asking for more owners than nodes caps at the node count.
        assert len(ring.owners("x", 10)) == 3


class TestRingProperties:
    @given(nodes=node_sets)
    @settings(max_examples=30, deadline=None)
    def test_every_key_lands_on_a_member(self, nodes):
        ring = HashRing(nodes)
        members = set(nodes)
        for key in KEYS[:200]:
            assert ring.owner(key) in members

    @given(nodes=st.lists(node_names, min_size=2, max_size=8, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_spread_is_roughly_uniform(self, nodes):
        """Each node owns between 1/3x and 3x its fair share of keys.

        128 vnodes/node over 2000 keys concentrates far tighter than
        this in practice; the generous bound keeps the property
        deterministic-stable over *any* node names Hypothesis invents.
        """
        ring = HashRing(nodes)
        spread = ring.spread(KEYS)
        fair = len(KEYS) / len(nodes)
        for node in nodes:
            share = spread.get(node, 0)
            assert fair / 3 <= share <= fair * 3, (
                f"node {node!r} owns {share} of {len(KEYS)} keys "
                f"(fair share {fair:.0f}) in {sorted(spread.items())}"
            )

    @given(
        nodes=st.lists(node_names, min_size=2, max_size=8, unique=True),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_removal_is_minimal_disruption(self, nodes, data):
        """Removing one node remaps exactly the keys it owned."""
        ring = HashRing(nodes)
        before = {k: ring.owner(k) for k in KEYS}
        victim = data.draw(st.sampled_from(nodes))
        ring.remove(victim)
        for key, old_owner in before.items():
            new_owner = ring.owner(key)
            if old_owner == victim:
                assert new_owner != victim  # remapped to a survivor
            else:
                assert new_owner == old_owner, (
                    f"key {key!r} moved {old_owner!r} -> {new_owner!r} "
                    f"although {victim!r} never owned it"
                )

    @given(
        nodes=st.lists(node_names, min_size=1, max_size=7, unique=True),
        newcomer=node_names,
    )
    @settings(max_examples=30, deadline=None)
    def test_addition_is_minimal_disruption(self, nodes, newcomer):
        """Adding a node steals ≈K/(N+1) keys; nothing else moves."""
        if newcomer in nodes:
            return
        ring = HashRing(nodes)
        before = {k: ring.owner(k) for k in KEYS}
        ring.add(newcomer)
        moved = 0
        for key, old_owner in before.items():
            new_owner = ring.owner(key)
            if new_owner != old_owner:
                # The only legal destination for a moved key is the
                # newcomer: no key may hop between incumbent nodes.
                assert new_owner == newcomer
                moved += 1
        fair = len(KEYS) / (len(nodes) + 1)
        assert moved <= fair * 3, (
            f"adding one node moved {moved} of {len(KEYS)} keys "
            f"(fair share {fair:.0f})"
        )

    @given(nodes=node_sets)
    @settings(max_examples=20, deadline=None)
    def test_remove_then_readd_restores_placement(self, nodes):
        """Ring placement has no memory: membership alone decides."""
        ring = HashRing(nodes)
        before = {k: ring.owner(k) for k in KEYS[:300]}
        victim = nodes[0]
        ring.remove(victim)
        ring.add(victim)
        assert before == {k: ring.owner(k) for k in KEYS[:300]}

    def test_vnode_count_tightens_spread(self):
        """More vnodes -> tighter balance (sanity on the default)."""
        nodes = ["a", "b", "c", "d"]
        fair = len(KEYS) / len(nodes)

        def max_dev(vnodes: int) -> float:
            spread = HashRing(nodes, vnodes=vnodes).spread(KEYS)
            return max(abs(spread.get(n, 0) - fair) for n in nodes)

        assert max_dev(DEFAULT_VNODES) <= max_dev(1)
