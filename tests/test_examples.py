"""Smoke tests: every example script runs end-to-end with small inputs.

Examples are documentation that executes; these tests keep them from
rotting.  Each is loaded as a module and its ``main()`` called with small
arguments via ``sys.argv`` patching.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: example file -> small argv
CASES = {
    "quickstart.py": ["60", "36"],
    "protocol_tour.py": ["40"],
    "strength_tradeoff.py": ["120"],
    "mobile_tags.py": ["30", "1500"],
    "warehouse_inventory.py": ["200", "3"],
    "privacy_blocker.py": [],
    "continuous_monitoring.py": ["40", "2"],
    "manifest_verification.py": ["200", "5"],
    "neighbor_discovery.py": ["12"],
}


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_has_a_smoke_case():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES), "add a smoke case for new examples"


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name, monkeypatch, capsys):
    module = load_example(name)
    monkeypatch.setattr(sys, "argv", [name, *CASES[name]])
    assert module.main() == 0
    out = capsys.readouterr().out
    assert len(out) > 100  # it actually reported something
