"""Gen2 link-timing model tests."""

from __future__ import annotations

import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.core.gen2_timing import ACK_BITS, QUERY_REP_BITS, Gen2TimingModel
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector


@pytest.fixture
def g2():
    return Gen2TimingModel()


class TestRates:
    def test_forward_bit_time(self, g2):
        assert g2.forward_bit_time == pytest.approx(6.25 * 1.375)

    def test_backlink_bit_time_fm0(self, g2):
        # BLF = (64/3) / 33.33 µs ≈ 0.64 MHz -> ~1.56 µs per bit.
        assert g2.backlink_bit_time == pytest.approx(1.5623, abs=0.01)

    def test_miller_scales_backlink(self):
        fm0 = Gen2TimingModel(miller=1)
        m4 = Gen2TimingModel(miller=4)
        assert m4.backlink_bit_time == pytest.approx(4 * fm0.backlink_bit_time)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gen2TimingModel(tari=0)
        with pytest.raises(ValueError):
            Gen2TimingModel(miller=3)
        with pytest.raises(ValueError):
            Gen2TimingModel(t1=-1)


class TestSlotDurations:
    def test_idle_is_timeout_not_reply(self, g2):
        det = QCDDetector(8)
        idle = g2.slot_duration(det, SlotType.IDLE)
        expected = QUERY_REP_BITS * g2.forward_bit_time + g2.t1 + g2.t3
        assert idle == pytest.approx(expected)

    def test_idle_cheaper_than_collided(self, g2):
        """The key structural difference from the paper's model: a real
        idle slot ends at the T3 timeout, before any reply window."""
        for det in (QCDDetector(8), CRCCDDetector(id_bits=64)):
            assert g2.slot_duration(det, SlotType.IDLE) < g2.slot_duration(
                det, SlotType.COLLIDED
            )

    def test_qcd_single_includes_ack_and_id(self, g2):
        det = QCDDetector(8)
        single = g2.slot_duration(det, SlotType.SINGLE)
        collided = g2.slot_duration(det, SlotType.COLLIDED)
        extra = single - collided
        expected = (
            ACK_BITS * g2.forward_bit_time
            + g2.t1
            + 64 * g2.backlink_bit_time
            + g2.t2
        )
        assert extra == pytest.approx(expected)

    def test_crc_single_gets_closing_ack_by_default(self, g2):
        """The paper's same-commands assumption: a one-phase single slot
        still ends with the reader's acknowledgment round-trip."""
        det = CRCCDDetector(id_bits=64)
        delta = g2.slot_duration(det, SlotType.SINGLE) - g2.slot_duration(
            det, SlotType.COLLIDED
        )
        assert delta == pytest.approx(
            ACK_BITS * g2.forward_bit_time + g2.t1 + g2.t2
        )

    def test_crc_single_no_second_phase_when_disabled(self):
        g2 = Gen2TimingModel(ack_one_phase=False)
        det = CRCCDDetector(id_bits=64)
        assert g2.slot_duration(det, SlotType.SINGLE) == pytest.approx(
            g2.slot_duration(det, SlotType.COLLIDED)
        )

    def test_ack_sensitivity_can_flip_the_winner(self):
        """Without the closing ACK on the baseline, QCD's extra ACK phase
        per single slot can outweigh its overhead-slot savings -- the
        practical-issues caveat the paper's bit-count model hides."""
        g2 = Gen2TimingModel(ack_one_phase=False)
        qcd, crc = QCDDetector(8), CRCCDDetector(id_bits=64)
        extra_per_single = g2.slot_duration(qcd, SlotType.SINGLE) - g2.slot_duration(
            crc, SlotType.SINGLE
        )
        saving_per_collided = g2.slot_duration(
            crc, SlotType.COLLIDED
        ) - g2.slot_duration(qcd, SlotType.COLLIDED)
        # FSA at the optimum has ~0.58 collided slots per single.
        assert extra_per_single > 0.58 * saving_per_collided

    def test_guard_adds_crc_bits(self):
        guarded = Gen2TimingModel(guard_id_phase=True)
        plain = Gen2TimingModel()
        det = QCDDetector(8)
        delta = guarded.slot_duration(det, SlotType.SINGLE) - plain.slot_duration(
            det, SlotType.SINGLE
        )
        assert delta == pytest.approx(32 * plain.backlink_bit_time)


class TestOrderingsPreserved:
    """The paper's qualitative conclusions survive realistic timing."""

    def test_qcd_overhead_slots_cheaper(self, g2):
        qcd = QCDDetector(8)
        crc = CRCCDDetector(id_bits=64)
        assert g2.slot_duration(qcd, SlotType.COLLIDED) < g2.slot_duration(
            crc, SlotType.COLLIDED
        )
        assert g2.slot_duration(qcd, SlotType.IDLE) <= g2.slot_duration(
            crc, SlotType.IDLE
        )

    def test_inventory_still_faster_under_gen2(self, g2):
        from repro.bits.rng import make_rng
        from repro.protocols.fsa import FramedSlottedAloha
        from repro.sim.reader import Reader
        from repro.tags.population import TagPopulation

        def total(detector):
            pop = TagPopulation(80, id_bits=64, rng=make_rng(5))
            return (
                Reader(detector, g2)
                .run_inventory(pop.tags, FramedSlottedAloha(48))
                .stats.total_time
            )

        assert total(QCDDetector(8)) < total(CRCCDDetector(id_bits=64))

    def test_ideal_detector_supported(self, g2):
        det = IdealDetector(64)
        assert g2.slot_duration(det, SlotType.SINGLE) > 0
