"""Gen2 command codec tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector
from repro.core.commands import Ack, Query, QueryAdjust, QueryRep, decode_command
from repro.core.gen2_timing import ACK_BITS, QUERY_BITS, QUERY_REP_BITS


class TestQuery:
    def test_length_matches_timing_constant(self):
        assert Query(q=4).encode().length == QUERY_BITS == 22

    @given(st.integers(0, 15))
    def test_roundtrip(self, q):
        cmd = Query(q=q, dr=1, m=2, session=1)
        assert Query.decode(cmd.encode()) == cmd

    def test_crc5_protects(self):
        frame = Query(q=7).encode()
        corrupted = frame ^ BitVector(1 << 10, 22)
        with pytest.raises(ValueError, match="CRC-5"):
            Query.decode(corrupted)

    def test_validation(self):
        with pytest.raises(ValueError):
            Query(q=16)
        with pytest.raises(ValueError):
            Query(q=1, session=4)

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="22 bits"):
            Query.decode(BitVector(0, 21))


class TestQueryRep:
    def test_length(self):
        assert QueryRep().encode().length == QUERY_REP_BITS == 4

    @given(st.integers(0, 3))
    def test_roundtrip(self, session):
        cmd = QueryRep(session=session)
        assert QueryRep.decode(cmd.encode()) == cmd

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryRep(session=5)


class TestQueryAdjust:
    @pytest.mark.parametrize(
        "updn", [QueryAdjust.UP, QueryAdjust.DOWN, QueryAdjust.HOLD]
    )
    def test_roundtrip(self, updn):
        cmd = QueryAdjust(session=2, updn=updn)
        assert QueryAdjust.decode(cmd.encode()) == cmd

    def test_invalid_updn(self):
        with pytest.raises(ValueError, match="updn"):
            QueryAdjust(updn=0b101)


class TestAck:
    def test_length_matches_timing_constant(self):
        assert Ack(rn16=0xBEEF).encode().length == ACK_BITS == 18

    @given(st.integers(0, 0xFFFF))
    def test_roundtrip(self, rn16):
        assert Ack.decode(Ack(rn16=rn16).encode()) == Ack(rn16=rn16)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ack(rn16=1 << 16)

    def test_qcd_preamble_as_handle(self):
        """QCD's contention preamble doubles as the ACK handle: the reader
        echoes the 2l bits it already received."""
        from repro.core.qcd import QCDDetector
        from repro.bits.rng import make_rng

        det = QCDDetector(8)
        preamble = det.contention_payload(0, make_rng(1))
        ack = Ack(rn16=preamble.to_int())
        assert Ack.decode(ack.encode()).rn16 == preamble.to_int()


class TestDispatch:
    def test_dispatch_each_type(self):
        for cmd in (
            Query(q=3),
            QueryRep(session=1),
            QueryAdjust(updn=QueryAdjust.UP),
            Ack(rn16=42),
        ):
            assert decode_command(cmd.encode()) == cmd

    def test_dispatch_unknown(self):
        with pytest.raises(ValueError, match="unrecognized"):
            decode_command(BitVector(0b111, 3))
