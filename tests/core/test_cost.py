"""Cost model tests (Table IV)."""

from __future__ import annotations

from repro.core.cost import measure_crc_cd_cost, measure_qcd_cost
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector


class TestTable4Claims:
    def test_crc_more_than_100_instructions(self):
        profile = measure_crc_cd_cost(CRCCDDetector(id_bits=64))
        assert profile.instructions_per_check > 100

    def test_qcd_one_instruction(self):
        profile = measure_qcd_cost(QCDDetector(8))
        assert profile.instructions_per_check == 1.0

    def test_crc_memory_1kb(self):
        profile = measure_crc_cd_cost(CRCCDDetector(id_bits=64))
        assert profile.memory_bits == 8 * 1024
        assert profile.as_row()["memory"] == "1 KB"

    def test_qcd_memory_16_bits(self):
        profile = measure_qcd_cost(QCDDetector(8))
        assert profile.memory_bits == 16
        assert profile.as_row()["memory"] == "16 bits"

    def test_transmission_96_vs_16(self):
        crc = measure_crc_cd_cost(CRCCDDetector(id_bits=64))
        qcd = measure_qcd_cost(QCDDetector(8))
        assert crc.transmission_bits == 96
        assert qcd.transmission_bits == 16

    def test_complexity_labels(self):
        assert measure_crc_cd_cost(CRCCDDetector()).complexity == "O(l)"
        assert measure_qcd_cost(QCDDetector(8)).complexity == "O(1)"

    def test_measurement_deterministic(self):
        a = measure_crc_cd_cost(CRCCDDetector(), samples=16, seed=3)
        b = measure_crc_cd_cost(CRCCDDetector(), samples=16, seed=3)
        assert a.instructions_per_check == b.instructions_per_check
