"""CRC-CD baseline detector tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bits.bitvec import BitVector
from repro.bits.crc import CRC16_CCITT_FALSE
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.verify.strategies import distinct_tag_ids


class TestClassification:
    def test_idle_on_none(self):
        assert CRCCDDetector().classify(None).slot_type is SlotType.IDLE

    def test_single_decodes_id(self, rng):
        det = CRCCDDetector(id_bits=64)
        signal = det.contention_payload(0x1234_5678_9ABC_DEF0, rng)
        out = det.classify(signal)
        assert out.slot_type is SlotType.SINGLE
        assert out.decoded_id == 0x1234_5678_9ABC_DEF0

    def test_collision_detected(self, rng):
        det = CRCCDDetector(id_bits=64)
        a = det.contention_payload(0x1111, rng)
        b = det.contention_payload(0x2222, rng)
        assert det.classify(a | b).slot_type is SlotType.COLLIDED

    def test_wrong_signal_length_rejected(self):
        det = CRCCDDetector(id_bits=64)
        with pytest.raises(ValueError, match="expected 96"):
            det.classify(BitVector(0, 95))

    @settings(max_examples=40)
    @given(distinct_tag_ids(64, min_size=2, max_size=5))
    def test_overlaps_essentially_always_detected(self, ids):
        """At the paper's parameter point (64-bit IDs, CRC-32) misses are
        ~2^-32 coincidences; none should show here.  (32-bit IDs are a
        different story -- see the saturation fixed-point tests.)"""
        det = CRCCDDetector(id_bits=64)
        from repro.bits.rng import make_rng

        rng = make_rng(0)
        signals = [det.contention_payload(i, rng) for i in ids]
        assert det.classify(BitVector.superpose(signals)).slot_type is SlotType.COLLIDED

    def test_crc32_all_ones_fixed_point(self):
        """CRC-32 of 32 one-bits is 0xFFFFFFFF -- an exact fixed point
        (cross-checked against zlib in tests/bits/test_crc.py)."""
        det = CRCCDDetector(id_bits=32)
        from repro.bits.bitvec import BitVector as BV

        assert det.engine.compute_bits(BV.ones(32)).to_int() == 0xFFFFFFFF

    def test_saturated_collision_missed_with_32bit_ids(self, rng):
        """A structural blind spot of CRC-CD under the Boolean-sum channel,
        found by property testing: with l_id = l_crc = 32, any collision
        whose OR saturates both fields to all-ones is misread as a single
        of the all-ones ID, because crc32(1^32) = 1^32.  The Boolean sum
        drives fields *toward* all-ones as m grows, so this is not a
        2^-32 coincidence but a systematic failure mode.  (QCD has no such
        fixed point: its check field is the complement of its random
        field, so saturating both to 1s always fails the check.)"""
        det = CRCCDDetector(id_bits=32)
        ids = [0, 1, (1 << 32) - 2]  # OR of ids = OR of crcs = all-ones
        signals = [det.contention_payload(i, rng) for i in ids]
        combined = BitVector.superpose(signals)
        if combined.popcount() == 64:  # both fields saturated
            out = det.classify(combined)
            assert out.slot_type is SlotType.SINGLE  # the documented miss
            assert out.decoded_id == (1 << 32) - 1

    def test_qcd_immune_to_saturation(self):
        """Contrast: a fully saturated QCD preamble always reads collided
        (c = 1^l requires r = 0^l, which is not a valid single)."""
        from repro.core.qcd import QCDDetector

        det = QCDDetector(8)
        assert det.classify(BitVector.ones(16)).slot_type is SlotType.COLLIDED


class TestParameters:
    def test_contention_bits_epc_gen2(self):
        # 64-bit ID + 32-bit CRC = the paper's 96 transmitted bits.
        assert CRCCDDetector(id_bits=64).contention_bits == 96

    def test_custom_crc(self):
        det = CRCCDDetector(id_bits=64, crc_spec=CRC16_CCITT_FALSE)
        assert det.contention_bits == 80
        assert det.crc_bits == 16

    def test_one_phase(self):
        assert not CRCCDDetector().needs_id_phase

    def test_invalid_id_bits(self):
        with pytest.raises(ValueError):
            CRCCDDetector(id_bits=0)

    def test_miss_probability(self):
        det = CRCCDDetector()
        assert det.miss_probability(1) == 0.0
        assert det.miss_probability(2) == pytest.approx(2.0**-32)


class TestInstrumentation:
    def test_tag_side_and_reader_side_crc_counted(self, rng):
        det = CRCCDDetector(id_bits=64)
        signal = det.contention_payload(5, rng)  # tag computes a CRC
        det.classify(signal)  # reader recomputes it
        assert det.crc_computations == 2
        assert det.crc_ops_total > 200  # two O(l) passes over 64 bits

    def test_reset(self, rng):
        det = CRCCDDetector()
        det.contention_payload(5, rng)
        det.reset_instrumentation()
        assert det.crc_computations == 0
        assert det.crc_ops_total == 0
        assert det.classify_calls == 0
