"""Genie detector tests."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.core.ideal import IdealDetector


class TestGenie:
    def test_requires_observation(self):
        det = IdealDetector()
        with pytest.raises(RuntimeError, match="observe_transmitters"):
            det.classify(None)

    def test_idle(self):
        det = IdealDetector()
        det.observe_transmitters(0)
        assert det.classify(None).slot_type is SlotType.IDLE

    def test_single_with_id(self):
        det = IdealDetector()
        det.observe_transmitters(1, sole_id=42)
        out = det.classify(BitVector(42, 64))
        assert out.slot_type is SlotType.SINGLE
        assert out.decoded_id == 42

    def test_single_falls_back_to_signal(self):
        det = IdealDetector()
        det.observe_transmitters(1)
        assert det.classify(BitVector(7, 64)).decoded_id == 7

    def test_collision(self):
        det = IdealDetector()
        det.observe_transmitters(3)
        assert det.classify(BitVector(7, 64)).slot_type is SlotType.COLLIDED

    def test_observation_consumed(self):
        det = IdealDetector()
        det.observe_transmitters(0)
        det.classify(None)
        with pytest.raises(RuntimeError):
            det.classify(None)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IdealDetector().observe_transmitters(-1)

    def test_never_misses(self):
        det = IdealDetector()
        assert det.miss_probability(2) == 0.0
        assert det.miss_probability(100) == 0.0

    def test_contention_is_bare_id(self, rng):
        det = IdealDetector(id_bits=64)
        assert det.contention_bits == 64
        assert det.contention_payload(5, rng) == BitVector(5, 64)
