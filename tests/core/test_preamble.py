"""Collision preamble codec tests."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.bits.bitvec import BitVector
from repro.core.collision_function import IdentityFunction
from repro.core.preamble import CollisionPreamble, PreambleCodec
from repro.verify.strategies import preamble_values


class TestCodec:
    def test_preamble_length_is_2l(self):
        # Paper: l = 8 -> 16-bit collision preamble.
        assert PreambleCodec(8).preamble_bits == 16
        assert PreambleCodec(4).preamble_bits == 8

    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            PreambleCodec(0)

    def test_draw_positive_integer(self, rng):
        codec = PreambleCodec(4)
        for _ in range(100):
            p = codec.draw(rng)
            assert 1 <= p.r.value <= 15

    def test_draw_signal_is_never_zero(self, rng):
        """r > 0 guarantees the preamble cannot impersonate an idle slot."""
        codec = PreambleCodec(4)
        for _ in range(100):
            assert not codec.draw(rng).to_signal().is_zero()

    def test_encode_decode_roundtrip(self):
        codec = PreambleCodec(8)
        r = BitVector(0xA5, 8)
        signal = codec.encode(r)
        decoded = codec.decode(signal)
        assert decoded.r == r
        assert decoded.c == ~r

    def test_encode_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            PreambleCodec(8).encode(BitVector(0, 8))

    def test_encode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            PreambleCodec(8).encode(BitVector(1, 4))

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            PreambleCodec(8).decode(BitVector(1, 8))

    def test_consistency_check(self):
        codec = PreambleCodec(4)
        good = CollisionPreamble(BitVector(5, 4), ~BitVector(5, 4))
        bad = CollisionPreamble(BitVector(5, 4), BitVector(5, 4))
        assert codec.is_consistent(good)
        assert not codec.is_consistent(bad)

    def test_custom_function(self):
        codec = PreambleCodec(4, function=IdentityFunction())
        r = BitVector(3, 4)
        assert codec.encode(r) == r + r


class TestWireFormat:
    @given(preamble_values(8))
    def test_signal_layout_r_then_c(self, r_val):
        codec = PreambleCodec(8)
        signal = codec.encode(BitVector(r_val, 8))
        assert signal[:8].to_int() == r_val
        assert signal[8:].to_int() == r_val ^ 0xFF

    @given(preamble_values(8), preamble_values(8))
    def test_overlap_detected_iff_distinct(self, a, b):
        """The end-to-end Definition 1 property at the signal level."""
        codec = PreambleCodec(8)
        sa = codec.encode(BitVector(a, 8))
        sb = codec.encode(BitVector(b, 8))
        overlapped = sa | sb
        decoded = codec.decode(overlapped)
        if a == b:
            assert codec.is_consistent(decoded)
        else:
            assert not codec.is_consistent(decoded)

    def test_strength_property(self):
        p = CollisionPreamble(BitVector(1, 6), BitVector(0, 6))
        assert p.strength == 6
