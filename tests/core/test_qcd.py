"""QCD detector tests (Algorithm 1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.verify.strategies import distinct_preamble_values


class TestAlgorithm1:
    def test_idle_on_none(self):
        assert QCDDetector(8).classify(None).slot_type is SlotType.IDLE

    def test_idle_on_zero_signal(self):
        det = QCDDetector(8)
        assert det.classify(BitVector.zeros(16)).slot_type is SlotType.IDLE

    def test_single_on_consistent_preamble(self, rng):
        det = QCDDetector(8)
        signal = det.contention_payload(0xDEAD, rng)
        assert det.classify(signal).slot_type is SlotType.SINGLE

    def test_collision_on_distinct_overlap(self):
        det = QCDDetector(8)
        a = det.codec.encode(BitVector(0x01, 8))
        b = det.codec.encode(BitVector(0x02, 8))
        assert det.classify(a | b).slot_type is SlotType.COLLIDED

    def test_miss_on_identical_draws(self):
        """The known blind spot: equal random integers overlap invisibly."""
        det = QCDDetector(8)
        a = det.codec.encode(BitVector(0x42, 8))
        assert det.classify(a | a).slot_type is SlotType.SINGLE

    def test_decoded_id_is_none(self, rng):
        """QCD is two-phase: the ID arrives after the ACK, not in the
        contention signal."""
        det = QCDDetector(8)
        signal = det.contention_payload(7, rng)
        assert det.classify(signal).decoded_id is None

    @given(distinct_preamble_values(8, min_size=2, max_size=8))
    def test_always_detects_distinct_draws(self, values):
        det = QCDDetector(8)
        signals = [det.codec.encode(BitVector(v, 8)) for v in values]
        overlap = BitVector.superpose(signals)
        assert det.classify(overlap).slot_type is SlotType.COLLIDED


class TestParameters:
    def test_contention_bits(self):
        assert QCDDetector(8).contention_bits == 16
        assert QCDDetector(4).contention_bits == 8
        assert QCDDetector(16).contention_bits == 32

    def test_needs_id_phase(self):
        assert QCDDetector(8).needs_id_phase

    def test_name_includes_strength(self):
        assert QCDDetector(4).name == "QCD-4"

    def test_payload_ignores_tag_id(self, rng):
        """The contention payload depends only on the random draw."""
        det = QCDDetector(8)
        s = det.contention_payload(0xFFFF, rng)
        assert s.length == 16


class TestMissProbability:
    def test_single_is_never_missed(self):
        assert QCDDetector(8).miss_probability(1) == 0.0
        assert QCDDetector(8).miss_probability(0) == 0.0

    def test_pair_probability(self):
        # m = 2: both tags must draw the same of 2^l - 1 values.
        assert QCDDetector(4).miss_probability(2) == pytest.approx(1 / 15)
        assert QCDDetector(8).miss_probability(2) == pytest.approx(1 / 255)

    def test_decreases_with_m(self):
        det = QCDDetector(8)
        assert det.miss_probability(3) < det.miss_probability(2)

    def test_decreases_with_strength(self):
        assert QCDDetector(16).miss_probability(2) < QCDDetector(8).miss_probability(2)

    def test_empirical_pair_miss_rate(self, rng):
        """Monte-Carlo check of the miss model at l = 4 (rate 1/15)."""
        det = QCDDetector(4)
        trials = 4000
        misses = 0
        for _ in range(trials):
            a = det.contention_payload(0, rng)
            b = det.contention_payload(1, rng)
            if det.classify(a | b).slot_type is SlotType.SINGLE:
                misses += 1
        rate = misses / trials
        assert 0.03 < rate < 0.11  # 1/15 ≈ 0.067


class TestInstrumentation:
    def test_counters(self, rng):
        det = QCDDetector(8)
        det.classify(None)
        det.classify(det.contention_payload(1, rng))
        assert det.classify_calls == 2
        assert det.function_evaluations == 1  # idle slots skip the check
        det.reset_instrumentation()
        assert det.classify_calls == 0
        assert det.function_evaluations == 0
