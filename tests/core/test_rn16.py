"""RN16 (structure-free Gen2 baseline) detector tests."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.core.rn16 import RN16Detector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.bits.rng import make_rng


class TestClassification:
    def test_idle(self):
        det = RN16Detector()
        assert det.classify(None).slot_type is SlotType.IDLE
        assert det.classify(BitVector.zeros(16)).slot_type is SlotType.IDLE

    def test_any_energy_presumed_single(self, rng):
        det = RN16Detector()
        a = det.contention_payload(1, rng)
        b = det.contention_payload(2, rng)
        assert det.classify(a).slot_type is SlotType.SINGLE
        assert det.classify(a | b).slot_type is SlotType.SINGLE  # blind

    def test_payload_positive(self, rng):
        det = RN16Detector(rn_bits=4)
        for _ in range(50):
            assert not det.contention_payload(0, rng).is_zero()

    def test_miss_probability_is_one(self):
        det = RN16Detector()
        assert det.miss_probability(2) == 1.0
        assert det.miss_probability(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RN16Detector(rn_bits=0)


class TestInventory:
    def test_completes_with_crc_guard(self, make_population):
        """The guard CRC is what makes blind contention workable: garbled
        IDs fail the check and the tags re-contend."""
        pop = make_population(40)
        timing = TimingModel(guard_id_phase=True)
        reader = Reader(RN16Detector(), timing, policy="crc_guard")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(24))
        assert sorted(result.identified_ids) == sorted(pop.ids)
        # Every true collision was misread at the contention phase.
        assert result.stats.accuracy == 0.0
        assert result.stats.missed_collisions == result.stats.true_counts.collided

    def test_loses_tags_without_guard(self, make_population):
        """Without the ID-phase CRC ('lost' policy), blind contention
        silently drops every collided group -- the failure QCD's 16 bits
        of structure prevent."""
        pop = make_population(40)
        reader = Reader(RN16Detector(), policy="lost")
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(24))
        assert result.lost_ids

    def test_qcd_strictly_faster_same_preamble_length(self):
        """Same 16 contention bits; QCD's structure ends collided slots at
        the preamble while RN16 rides them to the failed CRC."""
        timing = TimingModel(guard_id_phase=True)
        from repro.core.qcd import QCDDetector

        def total(detector, policy):
            pop = TagPopulation(100, id_bits=64, rng=make_rng(31))
            reader = Reader(detector, timing, policy=policy)
            return reader.run_inventory(
                pop.tags, FramedSlottedAloha(60)
            ).stats.total_time

        t_rn16 = total(RN16Detector(), "crc_guard")
        t_qcd = total(QCDDetector(8), "crc_guard")
        assert t_qcd < t_rn16

    def test_slot_charges(self):
        """A collided slot under RN16 costs the full single window (ACK'd
        ID + guard CRC ran before the garble surfaced)."""
        timing = TimingModel(guard_id_phase=True)
        det = RN16Detector()
        # detected single (which is what a collision reads as):
        assert timing.slot_duration(det, SlotType.SINGLE) == 16 + 64 + 32
        assert timing.slot_duration(det, SlotType.IDLE) == 16
