"""Theorem 1 and Definition 1 tests."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector
from repro.core.collision_function import (
    BitwiseComplement,
    CollisionFunction,
    IdentityFunction,
    is_collision_function,
)
from repro.verify.strategies import preamble_values


class TestTheorem1Exhaustive:
    """f(r) = r̄ satisfies Definition 1 -- verified exhaustively for small l."""

    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_complement_is_collision_function(self, length):
        assert is_collision_function(BitwiseComplement(), length, max_group=3)

    def test_complement_pairs_length5(self):
        assert is_collision_function(BitwiseComplement(), 5, max_group=2)

    @pytest.mark.parametrize("length", [2, 3, 4])
    def test_identity_is_not(self, length):
        assert not is_collision_function(IdentityFunction(), length)

    def test_checker_rejects_bad_length(self):
        with pytest.raises(ValueError):
            is_collision_function(BitwiseComplement(), 0)


class TestTheorem1Properties:
    """The two directions of Theorem 1 as property-based tests (l = 8,
    the paper's recommended strength -- far beyond exhaustive reach)."""

    @given(
        st.lists(preamble_values(8), min_size=2, max_size=6).filter(
            lambda xs: len(set(xs)) >= 2
        )
    )
    def test_distinct_values_always_detected(self, values):
        f = BitwiseComplement()
        vecs = [BitVector(v, 8) for v in values]
        combined = BitVector.superpose(vecs)
        assert f(combined) != BitVector.superpose([f(v) for v in vecs])

    @given(preamble_values(8), st.integers(1, 6))
    def test_identical_values_never_detected(self, value, copies):
        """All-equal draws are the (only) blind spot: m copies of the same
        r overlap back to r, so the check passes as if m = 1."""
        f = BitwiseComplement()
        vecs = [BitVector(value, 8)] * copies
        combined = BitVector.superpose(vecs)
        assert f(combined) == BitVector.superpose([f(v) for v in vecs])

    @given(preamble_values(8))
    def test_single_value_passes(self, value):
        f = BitwiseComplement()
        v = BitVector(value, 8)
        assert f(v) == ~v


class TestProofStructure:
    """The bit-level argument of the paper's proof of Theorem 1."""

    def test_differing_bit_position_argument(self):
        # If r_i and r_j differ at bit k, then (∨ r)_k = 1 so f(∨ r)_k = 0,
        # while f(r_i)_k ∨ f(r_j)_k = 1.
        for ri, rj in itertools.permutations(range(1, 16), 2):
            a, b = BitVector(ri, 4), BitVector(rj, 4)
            diffs = [k for k in range(4) if a.bit(k) != b.bit(k)]
            if not diffs:
                continue
            k = diffs[0]
            assert (a | b).bit(k) == 1
            assert (~(a | b)).bit(k) == 0
            assert ((~a) | (~b)).bit(k) == 1


class TestInterface:
    def test_length_preservation_enforced(self):
        class Truncating(CollisionFunction):
            name = "bad"

            def apply(self, r):
                return r[:-1]

        with pytest.raises(ValueError, match="preserve length"):
            Truncating()(BitVector(3, 4))

    def test_names(self):
        assert BitwiseComplement().name == "bitwise-complement"
        assert IdentityFunction().name == "identity"
