"""SELECT mask tests: scoped inventories."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.select import SelectMask
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.epc import Sgtin96
from repro.tags.population import TagPopulation
from repro.tags.tag import Tag


def tag_of(value: int, bits: int = 8) -> Tag:
    return Tag(tag_id=value, id_bits=bits, rng=make_rng(value))


class TestMatching:
    def test_prefix_match(self):
        mask = SelectMask.for_prefix(BitVector.from_bitstring("10"))
        assert mask.matches(tag_of(0b10110101))
        assert not mask.matches(tag_of(0b01110101))

    def test_offset_match(self):
        mask = SelectMask(offset=4, pattern=BitVector.from_bitstring("11"))
        assert mask.matches(tag_of(0b0000_1100))
        assert not mask.matches(tag_of(0b0000_0100))

    def test_negate(self):
        mask = SelectMask.for_prefix(BitVector.from_bitstring("1"), negate=True)
        assert mask.matches(tag_of(0b0111_0000))
        assert not mask.matches(tag_of(0b1000_0000))

    def test_pattern_beyond_id_never_matches(self):
        mask = SelectMask(offset=6, pattern=BitVector.from_bitstring("1111"))
        assert not mask.matches(tag_of(0xFF))
        # ...and its negation always matches.
        neg = SelectMask(offset=6, pattern=BitVector.from_bitstring("1111"), negate=True)
        assert neg.matches(tag_of(0xFF))

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectMask(offset=-1, pattern=BitVector(1, 1))
        with pytest.raises(ValueError):
            SelectMask(offset=0, pattern=BitVector(0, 0))


class TestCompanyMask:
    def test_selects_exactly_that_company(self, rng):
        ours = [
            Sgtin96.random(rng, partition=5, company_prefix=0x123456)
            for _ in range(10)
        ]
        theirs = [
            Sgtin96.random(rng, partition=5, company_prefix=0x654321)
            for _ in range(10)
        ]
        tags = [
            Tag(tag_id=e.encode().to_int(), id_bits=96, rng=rng.child())
            for e in ours + theirs
        ]
        mask = SelectMask.for_company(partition=5, company_prefix=0x123456)
        picked = mask.filter(tags)
        assert len(picked) == 10
        for tag in picked:
            assert Sgtin96.decode(tag.id_vector).company_prefix == 0x123456

    def test_filter_value_does_not_matter(self, rng):
        epc = Sgtin96.random(rng, partition=5, company_prefix=7, filter_value=3)
        tag = Tag(tag_id=epc.encode().to_int(), id_bits=96, rng=rng.child())
        mask = SelectMask.for_company(partition=5, company_prefix=7)
        assert mask.matches(tag)

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectMask.for_company(partition=9, company_prefix=0)
        with pytest.raises(ValueError):
            SelectMask.for_company(partition=6, company_prefix=1 << 20)


class TestScopedInventory:
    def test_reader_select_inventories_subset(self):
        pop = TagPopulation(60, id_bits=64, rng=make_rng(5))
        mask = SelectMask.for_prefix(BitVector.from_bitstring("0"))
        expected = {t.tag_id for t in pop if t.id_vector.bit(0) == 0}
        reader = Reader(QCDDetector(8), TimingModel())
        result = reader.run_inventory(
            pop.tags, FramedSlottedAloha(32), select=mask
        )
        assert set(result.identified_ids) == expected
        # Unselected tags never contended.
        for tag in pop:
            if tag.tag_id not in expected:
                assert not tag.identified

    def test_excluding_masks(self):
        pop = TagPopulation(6, id_bits=16, rng=make_rng(6))
        masks = SelectMask.excluding(pop.tags[:2])
        remaining = pop.tags
        for mask in masks:
            remaining = mask.filter(remaining)
        assert {t.tag_id for t in remaining} == {t.tag_id for t in pop.tags[2:]}