"""FM0-violation detector tests."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.core.phy import FM0ViolationDetector


class TestClassification:
    def test_idle(self):
        assert FM0ViolationDetector().classify(None).slot_type is SlotType.IDLE

    def test_single_decodes_id(self, rng):
        det = FM0ViolationDetector(id_bits=16)
        signal = det.contention_payload(0xBEEF, rng)
        out = det.classify(signal)
        assert out.slot_type is SlotType.SINGLE
        assert out.decoded_id == 0xBEEF

    def test_most_pair_collisions_detected(self, rng):
        det = FM0ViolationDetector(id_bits=16)
        detected = 0
        trials = 200
        for i in range(trials):
            a = det.contention_payload(2 * i + 1, rng)
            b = det.contention_payload(0xF000 + i, rng)
            if det.classify(a | b).slot_type is SlotType.COLLIDED:
                detected += 1
        assert detected > 0.7 * trials

    def test_documented_nesting_miss(self, rng):
        """FM0(1) ∨ FM0(0) can be a valid FM0(0) -- the nesting blind
        spot: with initial level 1, data-1 encodes [0,0] and data-0
        encodes [0,1]; their OR is [0,1], a clean data-0."""
        det = FM0ViolationDetector(id_bits=1)
        a = det.contention_payload(1, rng)
        b = det.contention_payload(0, rng)
        assert a.to_bits() == [0, 0]
        assert b.to_bits() == [0, 1]
        out = det.classify(a | b)
        assert out.slot_type is SlotType.SINGLE
        assert out.decoded_id == 0


class TestParameters:
    def test_airtime_is_id_bits(self):
        det = FM0ViolationDetector(id_bits=64)
        assert det.contention_bits == 64  # bit times, not half-symbols

    def test_waveform_is_twice_id_bits(self, rng):
        det = FM0ViolationDetector(id_bits=64)
        assert det.contention_payload(5, rng).length == 128

    def test_one_phase(self):
        assert not FM0ViolationDetector().needs_id_phase

    def test_validation(self):
        with pytest.raises(ValueError):
            FM0ViolationDetector(id_bits=0)


class TestMissProbability:
    def test_below_two_zero(self):
        assert FM0ViolationDetector().miss_probability(1) == 0.0

    def test_pair_rate_small_but_nonzero_cached(self):
        det = FM0ViolationDetector(id_bits=16)
        p2 = det.miss_probability(2, trials=800)
        assert 0.0 <= p2 < 0.3
        assert det.miss_probability(2) == p2  # cache hit

    def test_near_exact_for_random_ids(self):
        """For *random* ID pairs the nesting blind spot is vanishingly
        rare (every symbol pair must nest with matching levels, ~2^-l_id):
        FM0 violation sensing is effectively exact.  Its true costs are
        elsewhere -- full-ID-length overhead slots and the demodulator
        logic -- which is what the slot-cost test below quantifies."""
        det = FM0ViolationDetector(id_bits=16)
        assert det.miss_probability(2, trials=800) < 0.01


class TestInventoryIntegration:
    def test_completes_inventory(self, make_population):
        from repro.protocols.fsa import FramedSlottedAloha
        from repro.sim.reader import Reader
        from repro.core.timing import TimingModel

        pop = make_population(30, id_bits=16)
        det = FM0ViolationDetector(id_bits=16)
        result = Reader(det, TimingModel(id_bits=16)).run_inventory(
            pop.tags, FramedSlottedAloha(20)
        )
        assert sorted(result.identified_ids) == sorted(pop.ids)

    def test_slot_costs_between_qcd_and_crc(self, timing):
        """Overhead slots: QCD (16) < FM0 (64) < CRC-CD (96).
        Single slots: FM0 (64) < QCD (80) < CRC-CD (96)."""
        from repro.core.crc_cd import CRCCDDetector
        from repro.core.qcd import QCDDetector

        fm0 = FM0ViolationDetector(id_bits=64)
        qcd = QCDDetector(8)
        crc = CRCCDDetector(id_bits=64)
        idle = {
            d.name: timing.slot_duration(d, SlotType.IDLE)
            for d in (fm0, qcd, crc)
        }
        single = {
            d.name: timing.slot_duration(d, SlotType.SINGLE)
            for d in (fm0, qcd, crc)
        }
        assert idle["QCD-8"] < idle["FM0-violation"] < idle["CRC-CD/CRC-32/IEEE"]
        assert (
            single["FM0-violation"]
            < single["QCD-8"]
            < single["CRC-CD/CRC-32/IEEE"]
        )