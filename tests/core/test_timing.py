"""Timing model tests: the airtime accounting of Section V."""

from __future__ import annotations

import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import SlotType
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel


class TestCrcCdDurations:
    def test_all_slots_full_length(self, timing):
        det = CRCCDDetector(id_bits=64)
        for kind in SlotType:
            assert timing.slot_duration(det, kind) == 96.0

    def test_tau_scales(self):
        t = TimingModel(tau=2.0)
        assert t.slot_duration(CRCCDDetector(), SlotType.IDLE) == 192.0


class TestQcdDurations:
    def test_idle_and_collided_are_preamble_only(self, timing):
        det = QCDDetector(8)
        assert timing.slot_duration(det, SlotType.IDLE) == 16.0
        assert timing.slot_duration(det, SlotType.COLLIDED) == 16.0

    def test_single_adds_id_phase(self, timing):
        # l_prm + l_id = 16 + 64 = 80 (Section V-A).
        assert timing.slot_duration(QCDDetector(8), SlotType.SINGLE) == 80.0

    def test_guard_adds_crc(self):
        t = TimingModel(guard_id_phase=True)
        assert t.slot_duration(QCDDetector(8), SlotType.SINGLE) == 112.0
        # guard does not change idle/collided slots
        assert t.slot_duration(QCDDetector(8), SlotType.IDLE) == 16.0

    @pytest.mark.parametrize("strength,prm", [(4, 8), (8, 16), (16, 32)])
    def test_strength_sweep(self, timing, strength, prm):
        det = QCDDetector(strength)
        assert timing.slot_duration(det, SlotType.COLLIDED) == prm
        assert timing.slot_duration(det, SlotType.SINGLE) == prm + 64


class TestIdealDurations:
    def test_bare_id_every_slot(self, timing):
        det = IdealDetector(id_bits=64)
        for kind in SlotType:
            assert timing.slot_duration(det, kind) == 64.0


class TestInventoryTime:
    def test_closed_form_section5a(self, timing):
        """t_qcd = n(l_prm + l_id) + 1.7n·l_prm for n singles and 1.7n
        idle+collided slots."""
        det = QCDDetector(8)
        n = 100
        t = timing.inventory_time(
            det, n_idle=70, n_single=n, n_collided=100
        )
        assert t == n * 80 + 170 * 16

    def test_crc_closed_form(self, timing):
        det = CRCCDDetector()
        assert timing.inventory_time(det, 10, 20, 30) == 60 * 96


class TestValidation:
    def test_bad_tau(self):
        with pytest.raises(ValueError):
            TimingModel(tau=0)

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            TimingModel(id_bits=0)
        with pytest.raises(ValueError):
            TimingModel(crc_bits=-1)

    def test_frozen(self, timing):
        with pytest.raises(AttributeError):
            timing.tau = 5.0
