"""Experiment runner tests."""

from __future__ import annotations

import math

import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.experiments.config import CASES, SimulationCase
from repro.experiments.runner import (
    AggregateStats,
    ExperimentSuite,
    make_detector,
)
from repro.sim.metrics import DelayStats, InventoryStats, SlotCounts


def _stats(delay_mean: float, delay_std: float) -> InventoryStats:
    """Minimal InventoryStats with controlled delay statistics."""
    nan = math.isnan(delay_mean)
    return InventoryStats(
        n_tags=10,
        frames=1,
        true_counts=SlotCounts(1, 1, 1),
        detected_counts=SlotCounts(1, 1, 1),
        total_time=100.0,
        accuracy=1.0,
        delay=DelayStats(
            count=0 if nan else 1,
            mean=delay_mean,
            std=delay_std,
            minimum=delay_mean,
            maximum=delay_mean,
            median=delay_mean,
        ),
        utilization=0.5,
        missed_collisions=0,
        false_collisions=0,
        lost_tags=0,
    )


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(rounds=5, seed=7)


class TestMakeDetector:
    def test_crc(self):
        assert isinstance(make_detector("crc"), CRCCDDetector)

    def test_qcd(self):
        det = make_detector("qcd-16")
        assert isinstance(det, QCDDetector)
        assert det.strength == 16

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_detector("morse")


class TestSuite:
    def test_run_small_case(self, suite):
        agg = suite.run("I", "fsa", "qcd-8")
        assert agg.single == 50.0
        assert agg.rounds == 5
        assert agg.total_slots == agg.idle + agg.single + agg.collided

    def test_caching(self, suite):
        a = suite.run("I", "fsa", "qcd-8")
        b = suite.run("I", "fsa", "qcd-8")
        assert a is b

    def test_deterministic_across_suites(self):
        a = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        b = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        assert a.total_time == b.total_time

    def test_seed_changes_results(self):
        a = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        b = ExperimentSuite(rounds=3, seed=2).run("I", "fsa", "qcd-8")
        assert a.total_time != b.total_time

    def test_bt_protocol(self, suite):
        agg = suite.run("I", "bt", "crc")
        assert agg.single == 50.0
        assert 0.3 < agg.throughput < 0.4

    def test_unknown_protocol(self, suite):
        with pytest.raises(ValueError):
            suite.run("I", "ring", "crc")

    def test_case_object_accepted(self, suite):
        case = SimulationCase("tiny", 10, 8)
        agg = suite.run(case, "fsa", "qcd-8")
        assert agg.single == 10.0

    def test_grid(self):
        s = ExperimentSuite(rounds=2, seed=3)
        grid = s.grid(cases=("I",), protocols=("fsa",), schemes=("crc", "qcd-8"))
        assert set(grid) == {("I", "fsa", "crc"), ("I", "fsa", "qcd-8")}

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSuite(rounds=0)


class TestEdgeCases:
    """Degenerate grid points the sweep machinery must survive."""

    def test_empty_grid(self):
        assert ExperimentSuite(rounds=2, seed=3).grid(cases=()) == {}

    def test_empty_protocol_axis(self):
        assert ExperimentSuite(rounds=2, seed=3).grid(protocols=()) == {}

    def test_single_slot_frame_single_tag(self):
        """n = 1, ℱ = 1: the lone tag wins its slot; the closing empty
        frame confirms termination."""
        agg = ExperimentSuite(rounds=3, seed=5).run(
            SimulationCase("one", 1, 1), "fsa", "qcd-8"
        )
        assert agg.single == 1.0
        assert agg.collided == 0.0
        assert agg.total_slots == agg.single + agg.idle

    def test_zero_tags_fsa(self):
        """n = 0: one all-idle frame, perfect accuracy, airtime equal to
        frame_size idle slots."""
        agg = ExperimentSuite(rounds=3, seed=5).run(
            SimulationCase("zero", 0, 4), "fsa", "qcd-8"
        )
        assert agg.single == 0.0
        assert agg.collided == 0.0
        assert agg.idle == agg.total_slots == 4.0
        assert agg.accuracy == 1.0

    def test_zero_tags_bt(self):
        """BT with no contenders never splits: zero slots, zero airtime."""
        agg = ExperimentSuite(rounds=3, seed=5).run(
            SimulationCase("zero", 0, 4), "bt", "qcd-8"
        )
        assert agg.total_slots == 0.0
        assert agg.total_time == 0.0


class TestAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateStats.from_runs([])

    def test_cases_config(self):
        assert CASES["IV"].n_tags == 50_000
        assert CASES["I"].frame_size == 30

    def test_nan_delay_rounds_excluded_from_mean(self):
        """A no-identification round (NaN delay) must not drag the delay
        mean toward zero; it simply doesn't vote."""
        runs = [_stats(100.0, 10.0), _stats(math.nan, math.nan), _stats(300.0, 30.0)]
        agg = AggregateStats.from_runs(runs)
        assert agg.delay_mean == 200.0
        assert agg.delay_std == 20.0
        assert agg.rounds == 3  # the round still counts everywhere else

    def test_all_nan_delays_stay_nan(self):
        agg = AggregateStats.from_runs(
            [_stats(math.nan, math.nan), _stats(math.nan, math.nan)]
        )
        assert math.isnan(agg.delay_mean)
        assert math.isnan(agg.delay_std)

    def test_no_nan_delays_is_plain_mean(self):
        agg = AggregateStats.from_runs([_stats(10.0, 1.0), _stats(30.0, 3.0)])
        assert agg.delay_mean == 20.0
        assert agg.delay_std == 2.0


class TestGridSeeding:
    """Every identity-bearing case field must enter the RNG substream."""

    def test_cases_sharing_n_tags_get_distinct_streams(self):
        suite = ExperimentSuite(rounds=3, seed=1)
        a = suite.run(SimulationCase("sensitivity-A", 100, 64), "fsa", "qcd-8")
        b = suite.run(SimulationCase("sensitivity-B", 100, 64), "fsa", "qcd-8")
        assert a.total_time != b.total_time

    def test_frame_size_enters_the_stream(self):
        suite = ExperimentSuite(rounds=3, seed=1)
        a = suite.run(SimulationCase("s", 100, 64), "fsa", "qcd-8")
        b = suite.run(SimulationCase("s", 100, 128), "fsa", "qcd-8")
        # Different frame sizes change the process anyway; the idle count
        # differing by more than the frame delta shows the draws differ too.
        assert a.total_time != b.total_time

    def test_stream_pinned(self):
        """Regression pin of the (intentionally changed in PR 2) per-grid-
        point substream: seeded from case name, n_tags AND frame_size."""
        agg = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        assert agg.total_time == 6400.0
        assert agg.idle == pytest.approx(110.66666666666667, abs=0)
        assert agg.utilization == pytest.approx(0.5006418485237484, abs=0)


class TestPaperGridShape:
    """Light-weight shape assertions on the small cases (the benchmarks
    cover the full grid)."""

    def test_qcd_faster_than_crc_fsa(self, suite):
        crc = suite.run("I", "fsa", "crc")
        qcd = suite.run("I", "fsa", "qcd-8")
        assert qcd.total_time < 0.5 * crc.total_time

    def test_slot_counts_scheme_independent(self, suite):
        """Under the paper policy, the identification process is the same
        whatever the detector; only airtime differs."""
        crc = suite.run("I", "fsa", "crc")
        qcd = suite.run("I", "fsa", "qcd-8")
        assert crc.single == qcd.single == 50.0
