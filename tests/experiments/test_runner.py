"""Experiment runner tests."""

from __future__ import annotations

import pytest

from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.experiments.config import CASES, SimulationCase
from repro.experiments.runner import (
    AggregateStats,
    ExperimentSuite,
    make_detector,
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(rounds=5, seed=7)


class TestMakeDetector:
    def test_crc(self):
        assert isinstance(make_detector("crc"), CRCCDDetector)

    def test_qcd(self):
        det = make_detector("qcd-16")
        assert isinstance(det, QCDDetector)
        assert det.strength == 16

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_detector("morse")


class TestSuite:
    def test_run_small_case(self, suite):
        agg = suite.run("I", "fsa", "qcd-8")
        assert agg.single == 50.0
        assert agg.rounds == 5
        assert agg.total_slots == agg.idle + agg.single + agg.collided

    def test_caching(self, suite):
        a = suite.run("I", "fsa", "qcd-8")
        b = suite.run("I", "fsa", "qcd-8")
        assert a is b

    def test_deterministic_across_suites(self):
        a = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        b = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        assert a.total_time == b.total_time

    def test_seed_changes_results(self):
        a = ExperimentSuite(rounds=3, seed=1).run("I", "fsa", "qcd-8")
        b = ExperimentSuite(rounds=3, seed=2).run("I", "fsa", "qcd-8")
        assert a.total_time != b.total_time

    def test_bt_protocol(self, suite):
        agg = suite.run("I", "bt", "crc")
        assert agg.single == 50.0
        assert 0.3 < agg.throughput < 0.4

    def test_unknown_protocol(self, suite):
        with pytest.raises(ValueError):
            suite.run("I", "ring", "crc")

    def test_case_object_accepted(self, suite):
        case = SimulationCase("tiny", 10, 8)
        agg = suite.run(case, "fsa", "qcd-8")
        assert agg.single == 10.0

    def test_grid(self):
        s = ExperimentSuite(rounds=2, seed=3)
        grid = s.grid(cases=("I",), protocols=("fsa",), schemes=("crc", "qcd-8"))
        assert set(grid) == {("I", "fsa", "crc"), ("I", "fsa", "qcd-8")}

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSuite(rounds=0)


class TestAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateStats.from_runs([])

    def test_cases_config(self):
        assert CASES["IV"].n_tags == 50_000
        assert CASES["I"].frame_size == 30


class TestPaperGridShape:
    """Light-weight shape assertions on the small cases (the benchmarks
    cover the full grid)."""

    def test_qcd_faster_than_crc_fsa(self, suite):
        crc = suite.run("I", "fsa", "crc")
        qcd = suite.run("I", "fsa", "qcd-8")
        assert qcd.total_time < 0.5 * crc.total_time

    def test_slot_counts_scheme_independent(self, suite):
        """Under the paper policy, the identification process is the same
        whatever the detector; only airtime differs."""
        crc = suite.run("I", "fsa", "crc")
        qcd = suite.run("I", "fsa", "qcd-8")
        assert crc.single == qcd.single == 50.0
