"""Table/figure generator tests (small rounds; shape only)."""

from __future__ import annotations

import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import ExperimentSuite


@pytest.fixture(scope="module")
def suite():
    # Small-round suite: generators must work at any round count.
    return ExperimentSuite(rounds=3, seed=11)


class TestTheoryTables:
    def test_table2_rows(self):
        rows = tables.table2()
        assert len(rows) == 3
        assert rows[0]["strength"] == "4-bit"
        assert rows[0]["EI (ours)"] == rows[0]["EI (paper)"] == "0.6698"

    def test_table3_rows(self):
        rows = tables.table3()
        assert [r["strength"] for r in rows] == ["4-bit", "8-bit", "16-bit"]
        assert rows[1]["EI (ours)"] == "0.6023"

    def test_table4_rows(self):
        rows = tables.table4()
        assert len(rows) == 4


class TestSimulationTables:
    def test_table7(self, suite):
        rows = tables.table7(suite)
        assert len(rows) == 4
        assert rows[0]["case"] == "50"
        assert "paper" in rows[0]["throughput"]

    def test_table8(self, suite):
        rows = tables.table8(suite)
        assert len(rows) == 4
        assert "# of slots" in rows[0]

    def test_table9(self, suite):
        rows = tables.table9(suite)
        assert len(rows) == 4
        assert set(rows[0]) == {"case", "4-bit", "8-bit", "16-bit"}


class TestFigures:
    def test_fig5(self, suite):
        rows = figures.fig5(suite)
        assert len(rows) == 4
        for row in rows:
            accs = [float(row[f"{s}-bit"]) for s in (4, 8, 16)]
            assert accs[0] <= accs[1] <= accs[2] <= 1.0

    def test_fig6(self, suite):
        rows = figures.fig6(suite)
        assert len(rows) == 4
        for row in rows:
            assert row["reduction"].endswith("%")

    def test_fig7(self, suite):
        rows = figures.fig7(suite)
        assert len(rows) == 8  # 4 cases x 2 panels
        for row in rows:
            assert float(row["ratio"]) < 1.0  # QCD always faster

    def test_fig8(self, suite):
        rows = figures.fig8(suite)
        assert len(rows) == 8
        for row in rows:
            for s in (4, 8, 16):
                assert 0.0 < float(row[f"strength={s}"]) < 1.0
