"""On-disk grid-point cache tests: keys, round-trips, invalidation."""

from __future__ import annotations

import json
import math
from dataclasses import asdict

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import ExperimentSuite

PARAMS = {
    "schema": cache_mod.SCHEMA_VERSION,
    "rounds": 4,
    "seed": 3,
    "case": {"name": "I", "n_tags": 50, "frame_size": 30},
    "protocol": "fsa",
    "scheme": "qcd-8",
}


class TestKey:
    def test_stable(self):
        assert cache_key(PARAMS) == cache_key(dict(PARAMS))

    def test_insensitive_to_dict_order(self):
        reordered = dict(reversed(list(PARAMS.items())))
        assert cache_key(reordered) == cache_key(PARAMS)

    def test_every_field_enters_the_key(self):
        for field, value in [
            ("rounds", 5),
            ("seed", 4),
            ("protocol", "bt"),
            ("scheme", "crc"),
            ("case", {"name": "I", "n_tags": 50, "frame_size": 31}),
            ("schema", cache_mod.SCHEMA_VERSION + 1),
        ]:
            changed = dict(PARAMS, **{field: value})
            assert cache_key(changed) != cache_key(PARAMS), field


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(PARAMS) is None
        cache.store(PARAMS, {"x": 1.5, "n": 3})
        assert cache.load(PARAMS) == {"x": 1.5, "n": 3}

    def test_written_json_is_rfc8259_strict(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store(PARAMS, {"delay_mean": math.nan, "idle": 2.0})
        doc = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert doc["stats"]["delay_mean"] is None
        assert cache.load(PARAMS) == {"delay_mean": None, "idle": 2.0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(PARAMS, {"x": 1})
        cache.path_for(PARAMS).write_text("{not json")
        assert cache.load(PARAMS) is None

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.store(PARAMS, {"x": 1})
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 999)
        assert cache.load(PARAMS) is None

    def test_param_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(PARAMS, {"x": 1})
        # Same file on disk, forged params in the document.
        path = cache.path_for(PARAMS)
        doc = json.loads(path.read_text())
        doc["params"]["seed"] = 12345
        path.write_text(json.dumps(doc))
        assert cache.load(PARAMS) is None


class TestSuiteIntegration:
    def test_warm_cache_skips_kernels_and_is_identical(
        self, tmp_path, monkeypatch
    ):
        first = ExperimentSuite(rounds=3, seed=2, cache_dir=tmp_path)
        grid = dict(cases=("I",), protocols=("fsa", "bt"), schemes=("qcd-8",))
        cold = first.grid(**grid)

        calls = {"n": 0}

        def counted(real):
            def wrapper(*args, **kwargs):
                calls["n"] += 1
                return real(*args, **kwargs)

            return wrapper

        from repro.experiments import parallel as par

        monkeypatch.setattr(par, "fsa_fast", counted(par.fsa_fast))
        monkeypatch.setattr(par, "bt_fast", counted(par.bt_fast))

        warm = ExperimentSuite(rounds=3, seed=2, cache_dir=tmp_path).grid(
            **grid
        )
        assert calls["n"] == 0
        assert set(warm) == set(cold)
        for key in cold:
            assert asdict(warm[key]) == asdict(cold[key]), key

    def test_nan_delay_survives_disk_round_trip(self, tmp_path):
        from repro.experiments.config import SimulationCase

        # A 0-tag FSA inventory identifies nothing: every round's delay is
        # NaN, so the aggregate must be NaN, cached as null, and restored.
        case = SimulationCase("empty", 0, 8)
        cold = ExperimentSuite(rounds=2, seed=1, cache_dir=tmp_path).run(
            case, "fsa", "qcd-8"
        )
        assert math.isnan(cold.delay_mean)
        warm = ExperimentSuite(rounds=2, seed=1, cache_dir=tmp_path).run(
            case, "fsa", "qcd-8"
        )
        assert math.isnan(warm.delay_mean)
        assert warm.rounds == cold.rounds

    def test_different_seeds_do_not_share_entries(self, tmp_path):
        a = ExperimentSuite(rounds=2, seed=1, cache_dir=tmp_path).run(
            "I", "fsa", "qcd-8"
        )
        b = ExperimentSuite(rounds=2, seed=2, cache_dir=tmp_path).run(
            "I", "fsa", "qcd-8"
        )
        assert a.total_time != b.total_time

    def test_no_cache_dir_writes_nothing(self, tmp_path):
        ExperimentSuite(rounds=2, seed=1).run("I", "fsa", "qcd-8")
        assert list(tmp_path.iterdir()) == []


class TestConcurrentWriters:
    def test_same_key_concurrent_stores_never_corrupt(self, tmp_path):
        """16 threads hammering one key: every store survives, every load
        is either a miss (before the first replace) or the full document,
        and no temp files are left behind (the PR-5 race fix)."""
        import threading

        cache = ResultCache(tmp_path)
        stats = {"x": 1.5, "n": 3, "delay_mean": None}
        barrier = threading.Barrier(16)
        errors: list[BaseException] = []

        def writer():
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    cache.store(PARAMS, stats)
                    loaded = cache.load(PARAMS)
                    assert loaded == stats, loaded
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert cache.load(PARAMS) == stats
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_distinct_keys_concurrent_stores(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def writer(seed: int):
            params = dict(PARAMS, seed=seed)
            try:
                barrier.wait(timeout=10)
                for i in range(20):
                    cache.store(params, {"seed": seed, "i": i})
                assert cache.load(params) == {"seed": seed, "i": 19}
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_tmp_names_are_unique_per_call(self, tmp_path, monkeypatch):
        """Two stores of one key in one process must use different temp
        files (the old per-pid suffix made them collide)."""
        cache = ResultCache(tmp_path)
        seen = []
        real_replace = cache_mod.os.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", recording_replace)
        cache.store(PARAMS, {"x": 1})
        cache.store(PARAMS, {"x": 2})
        assert len(seen) == 2 and seen[0] != seen[1]


class TestOrphanSweep:
    def test_stale_tmp_files_are_swept_on_open(self, tmp_path):
        import os as _os

        stale = tmp_path / "deadbeef.json.tmp.1234.0"
        stale.write_text("{half a document")
        old = _os.path.getmtime(stale) - 2 * cache_mod.STALE_TMP_SECONDS
        _os.utime(stale, (old, old))
        ResultCache(tmp_path)
        assert not stale.exists()

    def test_fresh_tmp_files_survive_open(self, tmp_path):
        fresh = tmp_path / "deadbeef.json.tmp.1234.0"
        fresh.write_text("{half a document")
        ResultCache(tmp_path)
        assert fresh.exists()

    def test_failed_write_cleans_its_tmp(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(cache_mod.os, "replace", boom)
        with pytest.raises(OSError):
            cache.store(PARAMS, {"x": 1})
        assert list(tmp_path.glob("*.tmp.*")) == []


class TestCrossProcess:
    """The L2 tier's contract under *process*-level sharing: the fleet
    runs one ``ResultCache`` directory behind N backend processes, so a
    reader racing another process's writer must see either a miss or the
    complete document -- never a torn read, never an exception."""

    def test_mid_write_prefix_reads_as_clean_miss(self, tmp_path):
        """Every proper prefix of a real entry's bytes is a miss.

        ``os.replace`` makes this state unreachable through the cache's
        own API; the test pins the defense-in-depth contract for files
        torn by other means (crashed copy, partial scp of a cache dir).
        """
        cache = ResultCache(tmp_path)
        path = cache.store(PARAMS, {"x": 1.5, "n": 3})
        payload = path.read_bytes()
        for cut in (0, 1, len(payload) // 2, len(payload) - 2):
            path.write_bytes(payload[:cut])
            assert cache.load(PARAMS) is None, f"prefix of {cut} bytes hit"
        path.write_bytes(payload)
        assert cache.load(PARAMS) == {"x": 1.5, "n": 3}

    def test_two_process_stress_shared_directory(self, tmp_path):
        """4 real processes hammer one cache directory -- half mostly
        writing, half mostly reading, all on the same small key set.
        Every load in every process must be a miss or a complete
        document, and the directory must end clean of temp files."""
        import subprocess
        import sys

        worker = tmp_path / "worker.py"
        worker.write_text(
            """
import json, sys
from repro.experiments.cache import ResultCache, cache_key

root, role, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = ResultCache(root)
keys = [
    {
        "schema": 1,
        "rounds": 4,
        "seed": s,
        "case": {"name": "I", "n_tags": 50, "frame_size": 30},
        "protocol": "fsa",
        "scheme": "qcd-8",
    }
    for s in range(3)
]
for i in range(rounds):
    params = keys[i % len(keys)]
    if role == "writer":
        cache.store(params, {"seed": params["seed"], "i": i, "x": 1.5})
        loaded = cache.load(params)
    else:
        loaded = cache.load(params)
    if loaded is not None:
        # A hit is always a *complete* store: all fields, right seed.
        assert set(loaded) == {"seed", "i", "x"}, loaded
        assert loaded["seed"] == params["seed"], loaded
        assert loaded["x"] == 1.5, loaded
print("ok")
"""
        )
        cache_dir = tmp_path / "shared"
        procs = [
            subprocess.Popen(
                [sys.executable, str(worker), str(cache_dir), role, "400"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for role in ("writer", "writer", "reader", "reader")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        assert list(cache_dir.glob("*.tmp.*")) == []
        # The survivors are real, loadable entries.
        cache = ResultCache(cache_dir)
        hit = cache.load(
            {
                "schema": 1,
                "rounds": 4,
                "seed": 0,
                "case": {"name": "I", "n_tags": 50, "frame_size": 30},
                "protocol": "fsa",
                "scheme": "qcd-8",
            }
        )
        assert hit is not None and hit["x"] == 1.5
