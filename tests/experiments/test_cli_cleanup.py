"""Executor-release regression tests for the CLI entry points.

A crashing experiment (or a failing trace sink) must never leak the
suite's worker pool: ``main`` context-manages the suite around the
entire run, including the observability setup.  These tests monkeypatch
a spy suite/runner in place of the real one and assert ``close`` fires
on every error path.
"""

from __future__ import annotations

import pytest

import repro.experiments.cli as exp_cli
import repro.verify.cli as verify_cli


class SpySuite:
    """Stands in for ExperimentSuite; records lifecycle calls."""

    instances: list["SpySuite"] = []

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.seed = kwargs.get("seed", 2010)
        self.closed = 0
        SpySuite.instances.append(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        self.closed += 1


@pytest.fixture(autouse=True)
def _reset_spies():
    SpySuite.instances.clear()
    yield
    SpySuite.instances.clear()


@pytest.fixture
def spy_suite(monkeypatch):
    monkeypatch.setattr(exp_cli, "ExperimentSuite", SpySuite)
    return SpySuite


def _single_suite():
    assert len(SpySuite.instances) == 1
    return SpySuite.instances[0]


class TestExperimentsCliCleanup:
    def test_happy_path_closes_suite(self, spy_suite, monkeypatch, capsys):
        monkeypatch.setattr(
            exp_cli, "run_experiment", lambda exp_id, suite: [{"k": "v"}]
        )
        assert exp_cli.main(["table7"]) == 0
        assert _single_suite().closed == 1

    def test_raising_experiment_closes_suite(self, spy_suite, monkeypatch):
        def boom(exp_id, suite):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(exp_cli, "run_experiment", boom)
        with pytest.raises(RuntimeError, match="kernel exploded"):
            exp_cli.main(["table7"])
        assert _single_suite().closed == 1

    def test_failing_trace_sink_closes_suite(
        self, spy_suite, monkeypatch, tmp_path
    ):
        # JsonlSink construction runs *after* the suite exists; a bad
        # path must not strand the pool.
        def bad_sink(path):
            raise OSError("unwritable trace path")

        monkeypatch.setattr(exp_cli.obs, "JsonlSink", bad_sink)
        monkeypatch.setattr(
            exp_cli, "run_experiment", lambda exp_id, suite: [{"k": "v"}]
        )
        with pytest.raises(OSError, match="unwritable trace path"):
            exp_cli.main(
                ["table7", "--trace-out", str(tmp_path / "x" / "t.jsonl")]
            )
        assert _single_suite().closed == 1

    def test_failing_sink_does_not_leave_obs_enabled(
        self, spy_suite, monkeypatch, tmp_path
    ):
        from repro import obs

        def bad_sink(path):
            raise OSError("unwritable trace path")

        monkeypatch.setattr(exp_cli.obs, "JsonlSink", bad_sink)
        with pytest.raises(OSError):
            exp_cli.main(
                ["table7", "--trace-out", str(tmp_path / "x" / "t.jsonl")]
            )
        assert not obs.STATE.enabled

    def test_metrics_dump_failure_still_closes_suite(
        self, spy_suite, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            exp_cli, "run_experiment", lambda exp_id, suite: [{"k": "v"}]
        )

        def bad_dump(path):
            raise OSError("disk full")

        monkeypatch.setattr(exp_cli, "_dump_metrics", bad_dump)
        with pytest.raises(OSError, match="disk full"):
            exp_cli.main(
                ["table7", "--metrics-out", str(tmp_path / "m.json")]
            )
        assert _single_suite().closed == 1


class SpyRunner(SpySuite):
    """Stands in for VerificationRunner."""

    def run(self, oracles):
        raise RuntimeError("oracle exploded")


class TestVerifyCliCleanup:
    def test_raising_runner_is_closed(self, monkeypatch):
        monkeypatch.setattr(verify_cli, "VerificationRunner", SpyRunner)
        with pytest.raises(RuntimeError, match="oracle exploded"):
            verify_cli.main(["--quick"])
        assert len(SpyRunner.instances) == 1
        assert SpyRunner.instances[0].closed == 1
