"""Report rendering and CLI tests."""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, main, run_experiment
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentSuite


class TestRenderTable:
    def test_basic(self):
        rows = [{"a": "1", "b": "xx"}, {"a": "22", "b": "y"}]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_alignment(self):
        rows = [{"col": "short"}, {"col": "a-much-longer-cell"}]
        out = render_table(rows)
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines padded to equal width

    def test_missing_cells(self):
        rows = [{"a": "1"}, {"b": "2"}]
        out = render_table(rows)
        assert "a" in out and "b" in out

    def test_empty(self):
        assert "(no rows)" in render_table([], title="X")
        assert render_table([]) == "(no rows)"


class TestCli:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "table4",
            "table7",
            "table8",
            "table9",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
        }

    def test_extension_registry_complete(self):
        from repro.experiments.cli import EXTENSIONS

        assert set(EXTENSIONS) == {
            "gen2",
            "energy",
            "estimators",
            "noise",
            "neighbor",
            "coverage",
            "missing",
        }

    def test_extension_via_cli(self, capsys):
        assert main(["energy", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "energy budget" in out
        assert "QCD-8" in out

    def test_run_experiment_theory(self):
        suite = ExperimentSuite(rounds=1, seed=0)
        rows = run_experiment("table2", suite)
        assert len(rows) == 3

    def test_main_theory_table(self, capsys):
        assert main(["table2", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "0.6698" in out

    def test_main_simulation_table_small(self, capsys):
        assert main(["table7", "--rounds", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["table99"])
