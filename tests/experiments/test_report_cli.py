"""Report rendering and CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, main, run_experiment
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentSuite


class TestRenderTable:
    def test_basic(self):
        rows = [{"a": "1", "b": "xx"}, {"a": "22", "b": "y"}]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_alignment(self):
        rows = [{"col": "short"}, {"col": "a-much-longer-cell"}]
        out = render_table(rows)
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines padded to equal width

    def test_missing_cells(self):
        rows = [{"a": "1"}, {"b": "2"}]
        out = render_table(rows)
        assert "a" in out and "b" in out

    def test_empty(self):
        assert "(no rows)" in render_table([], title="X")
        assert render_table([]) == "(no rows)"


class TestCli:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "table4",
            "table7",
            "table8",
            "table9",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
        }

    def test_extension_registry_complete(self):
        from repro.experiments.cli import EXTENSIONS

        assert set(EXTENSIONS) == {
            "gen2",
            "energy",
            "estimators",
            "noise",
            "neighbor",
            "coverage",
            "missing",
        }

    def test_extension_via_cli(self, capsys):
        assert main(["energy", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "energy budget" in out
        assert "QCD-8" in out

    def test_run_experiment_theory(self):
        suite = ExperimentSuite(rounds=1, seed=0)
        rows = run_experiment("table2", suite)
        assert len(rows) == 3

    def test_main_theory_table(self, capsys):
        assert main(["table2", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "0.6698" in out

    def test_main_simulation_table_small(self, capsys):
        assert main(["table7", "--rounds", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_workers_and_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "mc-cache"
        argv = [
            "table7", "--rounds", "1", "--seed", "5",
            "--workers", "2", "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Table VII" in first
        assert list(cache.glob("*.json"))  # grid points persisted
        # Warm cache (and serial this time): identical output.
        warm_argv = [
            "table7", "--rounds", "1", "--seed", "5",
            "--cache-dir", str(cache),
        ]
        assert main(warm_argv) == 0
        assert capsys.readouterr().out == first
        # --no-cache recomputes but must land on the same numbers.
        assert main(warm_argv + ["--no-cache"]) == 0
        assert capsys.readouterr().out == first


class TestObsCli:
    def test_obs_report_self_check_passes(self, capsys):
        assert main(["obs-report", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Observability self-check" in out
        assert "repro_slots_total" in out
        assert " NO" not in out

    def test_metrics_out_matches_recomputation(self, tmp_path, capsys):
        import numpy as np

        from repro.bits.rng import make_rng
        from repro.core.qcd import QCDDetector
        from repro.protocols.fsa import FramedSlottedAloha
        from repro.sim.fast import fsa_fast
        from repro.sim.metrics import slot_counts
        from repro.sim.reader import Reader
        from repro.tags.population import TagPopulation

        path = tmp_path / "metrics.json"
        argv = ["obs-report", "--seed", "3", "--metrics-out", str(path)]
        assert main(argv) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        prom = path.with_suffix(".prom").read_text()
        assert "# TYPE repro_slots_total counter" in prom

        got: dict[str, int] = {}
        for sample in doc["repro_slots_total"]["samples"]:
            key = sample["labels"]["true_type"]
            got[key] = got.get(key, 0) + int(sample["value"])

        # Recompute the same seeded runs without obs and compare.
        suite = ExperimentSuite(seed=3)
        pop = TagPopulation(100, id_bits=64, rng=make_rng(3))
        reader = Reader(QCDDetector(8), suite.timing)
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(64))
        kernel = fsa_fast(
            1000,
            600,
            QCDDetector(8),
            suite.timing,
            np.random.Generator(np.random.PCG64(3)),
        )
        exact = slot_counts(result.trace)
        want = {
            "IDLE": exact.idle + kernel.true_counts.idle,
            "SINGLE": exact.single + kernel.true_counts.single,
            "COLLIDED": exact.collided + kernel.true_counts.collided,
        }
        assert got == {k: v for k, v in want.items() if v}

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        argv = [
            "table7", "--rounds", "1", "--seed", "5",
            "--trace-out", str(path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        assert {r["name"] for r in records} == {"grid_point"}
        assert all(r["type"] == "span" for r in records)
