"""The ``repro-bench`` CLI: report schema and the ratio regression gate."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import (
    build_parser,
    check_against_baseline,
    check_reader_against_baseline,
    main,
    run_bench,
)

TINY = dict(n_tags=120, frame_size=64, rounds=2, repeats=1, reader_tags=40)


@pytest.fixture(scope="module")
def report():
    return run_bench(**TINY)


class TestRunBench:
    def test_schema(self, report):
        assert set(report) == {"config", "kernels", "reader"}
        assert set(report["kernels"]) == {"fsa", "dfsa", "bt"}
        for entry in report["kernels"].values():
            assert entry["streamed_ms_per_round"] > 0
            assert entry["batched_ms_per_round"] > 0
            assert entry["batch_speedup_vs_streamed"] > 0
        reader = report["reader"]
        assert set(reader) == {
            "object_ms",
            "packed_ms",
            "batched_ms",
            "packed_speedup",
            "batched_speedup",
            "batched_speedup_vs_packed",
        }
        assert reader["packed_speedup"] > 0
        assert reader["batched_speedup"] > 0
        assert report["config"]["frozen_measured"] is False

    def test_frozen_engines_measured_when_module_given(self):
        import sys
        from pathlib import Path

        frozen_dir = (
            Path(__file__).resolve().parents[2] / "benchmarks"
        )
        sys.path.insert(0, str(frozen_dir))
        try:
            import _reference_kernels as frozen
        finally:
            sys.path.remove(str(frozen_dir))
        rep = run_bench(frozen=frozen, **TINY)
        assert rep["config"]["frozen_measured"] is True
        for entry in rep["kernels"].values():
            assert entry["frozen_ms_per_round"] > 0
            assert entry["batch_speedup_vs_frozen"] > 0


class TestGate:
    def _report(self, fsa_ratio=2.0, reader_ratio=1.3):
        return {
            "kernels": {
                "fsa": {"batch_speedup_vs_streamed": fsa_ratio},
            },
            "reader": {"packed_speedup": reader_ratio},
        }

    def test_passes_against_itself(self):
        # Synthetic ratios: at the TINY measurement size batching overhead
        # can leave batched ~= streamed, which the absolute <1.0x check
        # correctly flags -- that is not what this test is about.
        report = self._report()
        assert check_against_baseline(report, report, 0.25) == []

    def test_flags_batch_slower_than_streamed(self):
        problems = check_against_baseline(
            self._report(fsa_ratio=0.8), self._report(), 0.25
        )
        assert any("slower than streamed" in p for p in problems)

    def test_flags_ratio_regression(self):
        problems = check_against_baseline(
            self._report(fsa_ratio=1.2), self._report(fsa_ratio=2.0), 0.25
        )
        assert any("regressed" in p for p in problems)

    def test_tolerates_small_drift(self):
        assert (
            check_against_baseline(
                self._report(fsa_ratio=1.9), self._report(fsa_ratio=2.0), 0.25
            )
            == []
        )

    def test_flags_reader_regression(self):
        problems = check_against_baseline(
            self._report(reader_ratio=0.8),
            self._report(reader_ratio=1.5),
            0.25,
        )
        assert any("reader" in p for p in problems)

    def test_missing_baseline_entries_skip_ratio_checks(self):
        assert (
            check_against_baseline(self._report(), {"kernels": {}}, 0.25)
            == []
        )

    def test_flags_batched_reader_slower_than_object(self):
        report = self._report()
        report["reader"]["batched_speedup"] = 0.9
        problems = check_against_baseline(report, self._report(), 0.25)
        assert any("frame-batched path is slower" in p for p in problems)

    def test_reader_gate_flags_batched_regression(self):
        report = self._report()
        report["reader"]["batched_speedup"] = 1.5
        baseline = {"reader": {"batched_speedup": 2.6}}
        problems = check_reader_against_baseline(report, baseline, 0.25)
        assert any("frame-batched speedup regressed" in p for p in problems)

    def test_reader_gate_passes_against_itself(self):
        report = self._report()
        report["reader"]["batched_speedup"] = 2.6
        assert check_reader_against_baseline(report, report, 0.25) == []

    def test_reader_gate_skips_ratios_missing_on_either_side(self):
        # A pre-frame-batching baseline has no batched_speedup entry;
        # only the per-slot ratio is gated then.
        report = self._report(reader_ratio=1.3)
        report["reader"]["batched_speedup"] = 2.6
        baseline = {"reader": {"packed_speedup": 1.3}}
        assert check_reader_against_baseline(report, baseline, 0.25) == []


class TestCli:
    def test_writes_report(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "--quick",
                "--n-tags", "120", "--frame-size", "64",
                "--rounds", "2", "--repeats", "1", "--reader-tags", "40",
                "--out", str(out),
                "--frozen-dir", str(tmp_path / "missing"),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["config"]["n_tags"] == 120
        assert doc["config"]["frozen_measured"] is False

    def test_gate_failure_exits_nonzero(self, tmp_path):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        # An unreachable baseline ratio forces a regression verdict.
        baseline.write_text(
            json.dumps(
                {
                    "kernels": {
                        "fsa": {"batch_speedup_vs_streamed": 1e9},
                    },
                    "reader": {"packed_speedup": 1.0},
                }
            )
        )
        rc = main(
            [
                "--n-tags", "120", "--frame-size", "64",
                "--rounds", "2", "--repeats", "1", "--reader-tags", "40",
                "--out", str(out),
                "--baseline", str(baseline),
                "--frozen-dir", str(tmp_path / "missing"),
            ]
        )
        assert rc == 1

    def test_writes_reader_report(self, tmp_path):
        out = tmp_path / "bench.json"
        reader_out = tmp_path / "reader.json"
        rc = main(
            [
                "--n-tags", "120", "--frame-size", "64",
                "--rounds", "2", "--repeats", "1", "--reader-tags", "40",
                "--out", str(out),
                "--reader-out", str(reader_out),
                "--frozen-dir", str(tmp_path / "missing"),
            ]
        )
        assert rc == 0
        doc = json.loads(reader_out.read_text())
        assert set(doc) == {"config", "reader"}
        assert doc["reader"]["batched_ms"] > 0

    def test_reader_baseline_gate_failure_exits_nonzero(self, tmp_path):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "reader_baseline.json"
        baseline.write_text(
            json.dumps({"reader": {"batched_speedup": 1e9}})
        )
        rc = main(
            [
                "--n-tags", "120", "--frame-size", "64",
                "--rounds", "2", "--repeats", "1", "--reader-tags", "40",
                "--out", str(out),
                "--reader-baseline", str(baseline),
                "--frozen-dir", str(tmp_path / "missing"),
            ]
        )
        assert rc == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.out == "BENCH_kernels.json"
        assert args.tolerance == 0.25
        assert args.reader_out is None
        assert args.reader_baseline is None
        assert not args.quick
