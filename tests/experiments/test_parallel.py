"""Parallel executor tests: sharding, determinism, obs merging."""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro import obs
from repro.obs import instruments as inst
from repro.experiments.parallel import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    shard_rounds,
)
from repro.experiments.runner import ExperimentSuite

GRID = dict(cases=("I",), protocols=("fsa", "bt"), schemes=("crc", "qcd-8"))


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSharding:
    def test_contiguous_order_preserving(self):
        children = list(range(7))  # shard_rounds is agnostic to item type
        shards = shard_rounds(children, 3)
        assert [len(s) for s in shards] == [3, 2, 2]
        assert [x for s in shards for x in s] == children

    def test_fewer_rounds_than_shards(self):
        shards = shard_rounds([1, 2], 8)
        assert [len(s) for s in shards] == [1, 1]

    def test_single_shard(self):
        assert shard_rounds([1, 2, 3], 1) == [(1, 2, 3)]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_rounds([1], 0)

    def test_seed_children_shard_losslessly(self):
        children = np.random.SeedSequence(1).spawn(5)
        shards = shard_rounds(children, 2)
        flat = [c for s in shards for c in s]
        assert [c.spawn_key for c in flat] == [c.spawn_key for c in children]


class TestExecutorFactory:
    def test_serial_for_one_worker(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_pool_for_many(self):
        ex = make_executor(3)
        assert isinstance(ex, ProcessExecutor)
        assert ex.workers == 3
        ex.close()

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(1)


class TestParallelDeterminism:
    """workers=N must be bit-identical to the serial path."""

    def test_grid_bit_identical_across_worker_counts(self):
        serial = ExperimentSuite(rounds=6, seed=11).grid(**GRID)
        for workers in (2, 4):
            with ExperimentSuite(rounds=6, seed=11, workers=workers) as suite:
                parallel = suite.grid(**GRID)
            assert set(parallel) == set(serial)
            for key, agg in parallel.items():
                want = asdict(serial[key])
                got = asdict(agg)
                for field, value in want.items():
                    assert got[field] == value, (key, field)

    def test_workers_exceeding_rounds(self):
        serial = ExperimentSuite(rounds=2, seed=5).run("I", "fsa", "qcd-8")
        with ExperimentSuite(rounds=2, seed=5, workers=4) as suite:
            assert suite.run("I", "fsa", "qcd-8") == serial

    def test_single_round_runs_inline(self):
        serial = ExperimentSuite(rounds=1, seed=5).run("I", "bt", "crc")
        with ExperimentSuite(rounds=1, seed=5, workers=2) as suite:
            assert suite.run("I", "bt", "crc") == serial


class TestObsMerge:
    def test_worker_metrics_merged_into_parent(self):
        obs.enable()
        with ExperimentSuite(rounds=5, seed=1, workers=2) as suite:
            suite.run("I", "fsa", "qcd-8")
        reg = obs.STATE.registry
        assert reg.counter_totals(inst.MC_ROUNDS) == 5
        # Slot totals must cover every round, not just the parent's share.
        totals = obs.slot_totals()
        assert totals.get("SINGLE") == 5 * 50
        assert reg.counter_totals(inst.GRID_POINTS) == 1

    def test_parallel_counts_equal_serial_counts(self):
        obs.enable()
        ExperimentSuite(rounds=4, seed=9).run("I", "fsa", "qcd-4")
        serial = dict(obs.slot_totals())
        obs.reset()
        with ExperimentSuite(rounds=4, seed=9, workers=2) as suite:
            suite.run("I", "fsa", "qcd-4")
        assert dict(obs.slot_totals()) == serial
