"""Smoke tests for the extension-study generators (small rounds)."""

from __future__ import annotations

import pytest

from repro.experiments import extensions


class TestGenerators:
    def test_gen2_rows(self):
        rows = extensions.ext_gen2(rounds=2, seed=1)
        assert [r["timing model"] for r in rows] == [
            "paper (τ per bit)",
            "Gen2, same-commands ACK",
            "Gen2, no baseline ACK",
        ]
        eis = [float(r["EI"]) for r in rows]
        assert eis[0] > eis[1] > eis[2]

    def test_energy_rows(self):
        rows = extensions.ext_energy(seed=2)
        by = {r["scheme"]: r for r in rows}
        crc = float(by["CRC-CD"]["total (µJ)"].replace(",", ""))
        qcd = float(by["QCD-8"]["total (µJ)"].replace(",", ""))
        assert qcd < crc

    def test_neighbor_rows(self):
        rows = extensions.ext_neighbor(rounds=2, seed=3)
        by = {r["framing"]: r for r in rows}
        assert (
            by["QCD-8"]["slots to full discovery"]
            == by["CRC-CD"]["slots to full discovery"]
        )

    def test_missing_rows(self):
        rows = extensions.ext_missing(rounds=1, seed=4)
        assert rows[-1]["framing"] == "(full QCD-8 inventory)"
        assert len(rows) == 3

    def test_coverage_rows(self):
        rows = extensions.ext_coverage(rounds=1, seed=5)
        assert len(rows) == 2

    @pytest.mark.slow
    def test_estimators_rows(self):
        rows = extensions.ext_estimators(rounds=1, seed=6)
        assert [r["estimator"] for r in rows] == [
            "lower-bound",
            "schoute",
            "eom-lee",
            "vogt",
            "mle",
        ]

    def test_noise_rows(self):
        rows = extensions.ext_noise(rounds=1, seed=7)
        assert [r["BER"] for r in rows] == ["0", "0.001", "0.005", "0.02"]


class TestRoundsValidation:
    """Negative path: every generator rejects a non-positive round count
    up front instead of silently emitting empty or degenerate rows."""

    @pytest.mark.parametrize("name", extensions.__all__)
    @pytest.mark.parametrize("rounds", [0, -1])
    def test_rejects_nonpositive_rounds(self, name, rounds):
        fn = getattr(extensions, name)
        with pytest.raises(ValueError, match="rounds"):
            fn(rounds=rounds)
