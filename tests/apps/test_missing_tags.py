"""Missing-tag detection tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.missing_tags import detect_missing_tags, expected_rounds
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel


def detect(expected, present, detector=None, seed=0, **kw):
    return detect_missing_tags(
        expected,
        present,
        detector or QCDDetector(8),
        TimingModel(),
        np.random.default_rng(seed),
        **kw,
    )


class TestCorrectness:
    def test_finds_exactly_the_missing(self):
        expected = list(range(100))
        missing = {3, 17, 42, 99}
        present = [i for i in expected if i not in missing]
        result = detect(expected, present)
        assert result.missing_ids == frozenset(missing)
        assert result.present == 96

    def test_none_missing(self):
        expected = list(range(50))
        result = detect(expected, expected)
        assert result.missing_ids == frozenset()

    def test_all_missing(self):
        expected = list(range(50))
        result = detect(expected, [])
        assert result.missing_ids == frozenset(expected)
        # Empty field: every slot silent, one round suffices.
        assert result.rounds == 1

    def test_empty_manifest(self):
        result = detect([], [])
        assert result.missing_ids == frozenset()
        assert result.rounds == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="subset"):
            detect([1, 2], [3])
        with pytest.raises(ValueError, match="load"):
            detect([1, 2], [1], load=0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 80),
        missing_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 9999),
    )
    def test_property_exact_classification(self, n, missing_frac, seed):
        rng = np.random.default_rng(seed)
        expected = list(range(n))
        k = int(round(missing_frac * n))
        missing = set(rng.choice(n, size=k, replace=False).tolist())
        present = [i for i in expected if i not in missing]
        result = detect(expected, present, seed=seed + 1)
        assert result.missing_ids == frozenset(missing)


class TestEfficiency:
    def test_no_id_is_ever_transferred(self):
        """Airtime never includes an ID phase: per-slot cost is bounded by
        the contention window."""
        det = QCDDetector(8)
        result = detect(list(range(200)), list(range(100, 200)), det)
        assert result.airtime <= result.slots * det.contention_bits * 1.0

    def test_qcd_six_times_cheaper(self):
        expected = list(range(300))
        present = expected[:250]
        qcd = detect(expected, present, QCDDetector(8), seed=5)
        crc = detect(expected, present, CRCCDDetector(id_bits=64), seed=5)
        assert qcd.slots == crc.slots  # identical schedule
        assert crc.airtime / qcd.airtime == pytest.approx(6.0, rel=0.01)

    def test_verification_cheaper_than_identification(self):
        """Verifying a 500-tag manifest must cost far less airtime than
        reading 500 tags."""
        from repro.sim.fast import fsa_fast

        expected = list(range(500))
        verify = detect(expected, expected[:480], QCDDetector(8), seed=9)
        inventory = fsa_fast(
            500, 300, QCDDetector(8), TimingModel(), np.random.default_rng(9)
        )
        assert verify.airtime < 0.5 * inventory.total_time

    def test_round_count_logarithmic(self):
        result = detect(list(range(1000)), list(range(1000)), seed=11)
        assert result.rounds <= 3 * expected_rounds(1000)

    def test_expected_rounds_model(self):
        assert expected_rounds(1) == 1.0
        assert expected_rounds(1000) > expected_rounds(100)
