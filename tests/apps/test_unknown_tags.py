"""Unknown-tag (alien) detection tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.unknown_tags import (
    detect_unknown_tags,
    rounds_for_confidence,
)
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel


def detect(expected=200, aliens=0, seed=0, **kw):
    return detect_unknown_tags(
        expected,
        aliens,
        QCDDetector(8),
        TimingModel(),
        np.random.default_rng(seed),
        **kw,
    )


class TestDetection:
    def test_alien_found_quickly(self):
        result = detect(aliens=5, mode="detect")
        assert result.alien_detected
        assert result.rounds <= 10  # p0 ≈ 0.37 per alien per round

    def test_clean_population_never_false_alarms(self):
        for seed in range(5):
            result = detect(aliens=0, mode="certify", seed=seed)
            assert not result.alien_detected

    def test_certify_runs_fixed_rounds(self):
        result = detect(aliens=0, mode="certify", confidence=0.999)
        assert result.rounds == rounds_for_confidence(0.999)
        assert result.clean_confidence >= 0.999

    def test_detect_mode_stops_early(self):
        many = detect(aliens=20, mode="detect", seed=3)
        assert many.alien_detected
        assert many.rounds <= 3  # 20 aliens: one lands in silence fast

    def test_single_alien_detection_rate_matches_model(self):
        """Over many seeds, a lone alien is caught within k rounds with
        probability 1 − (1 − e^{-1})^k (k = 2 at confidence 0.5)."""
        k = rounds_for_confidence(0.5)
        predicted = 1.0 - (1.0 - math.exp(-1)) ** k
        hits = 0
        trials = 250
        for seed in range(trials):
            result = detect(
                expected=300, aliens=1, mode="certify", confidence=0.5, seed=seed
            )
            assert result.rounds == k
            if result.alien_detected:
                hits += 1
        assert hits / trials == pytest.approx(predicted, abs=0.09)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            detect(expected=-1)
        with pytest.raises(ValueError):
            detect(aliens=-1)
        with pytest.raises(ValueError):
            detect(load=0)
        with pytest.raises(ValueError):
            detect(mode="maybe")
        with pytest.raises(ValueError):
            rounds_for_confidence(1.0)

    def test_rounds_for_confidence_monotone(self):
        assert rounds_for_confidence(0.999) > rounds_for_confidence(0.9)


class TestEfficiency:
    def test_qcd_airtime_factor(self):
        qcd = detect(aliens=0, mode="certify", seed=9)
        crc = detect_unknown_tags(
            200,
            0,
            CRCCDDetector(id_bits=64),
            TimingModel(),
            np.random.default_rng(9),
            mode="certify",
        )
        assert qcd.slots == crc.slots
        assert crc.airtime / qcd.airtime == pytest.approx(6.0, rel=0.01)

    def test_certification_cost_logarithmic_in_risk(self):
        cheap = detect(aliens=0, mode="certify", confidence=0.9, seed=1)
        strict = detect(aliens=0, mode="certify", confidence=0.9999, seed=1)
        assert strict.rounds < 5 * cheap.rounds