"""Property-based protocol invariants (hypothesis-driven).

Random small populations, random seeds, every protocol family: the slot
accounting and identification invariants must hold for any input -- the
same contract the matrix test checks pointwise, here explored over the
input space, including the awkward edges (n = 0, 1, 2; frame size 1).

The generators live in repro.verify.strategies (shared with the
differential-oracle suite); the invariant predicate itself is the
strict-mode checker from repro.verify.invariants plus the protocol-level
completeness assertions below.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.qt import QueryTree
from repro.sim.reader import Reader
from repro.verify import invariants
from repro.verify.strategies import adequate_frame, frame_slacks, populations


def run_checked(pop, protocol, **reader_kwargs):
    """Run an inventory with the engine invariant checker armed (strict)."""
    with invariants.checking(strict=True):
        return Reader(QCDDetector(8), **reader_kwargs).run_inventory(
            pop.tags, protocol
        )


def check_invariants(pop, result):
    stats = result.stats
    counts = stats.true_counts
    # 1. Exactly one single slot per tag.
    assert counts.single == len(pop)
    # 2. X + Y + Z = 1 per slot (paper Section III): totals match trace.
    assert counts.total == len(result.trace)
    # 3. Identification is a bijection onto the population.
    assert sorted(result.identified_ids) == sorted(pop.ids)
    # 4. Airtime is the sum of slot durations and is monotone along the
    #    trace.
    times = [r.end_time for r in result.trace]
    assert times == sorted(times)
    # 5. Every identified slot is a true single.
    for rec in result.trace:
        if rec.identified_tag is not None and not rec.captured:
            assert rec.true_type is SlotType.SINGLE


@settings(max_examples=25, deadline=None)
@given(pop=populations(max_size=40), frame_slack=frame_slacks(40))
def test_fsa_invariants(pop, frame_slack):
    # The frame must scale with the population (see adequate_frame for the
    # fixed-frame pathology the generator must stay clear of).
    frame = adequate_frame(len(pop), slack=frame_slack)
    result = run_checked(pop, FramedSlottedAloha(frame))
    check_invariants(pop, result)
    # FSA: whole frames only (confirm termination).
    assert len(result.trace) % frame == 0


def test_fsa_frame_of_one_deadlocks():
    """The pathology itself, pinned: ℱ = 1 with n >= 2 tags collides in
    every slot forever; the reader's max_slots guard is what fires."""
    import pytest

    from repro.bits.rng import make_rng
    from repro.tags.population import TagPopulation

    pop = TagPopulation(2, id_bits=16, rng=make_rng(123))
    reader = Reader(QCDDetector(8), max_slots=500)
    with pytest.raises(RuntimeError, match="max_slots"):
        reader.run_inventory(pop.tags, FramedSlottedAloha(1))


@settings(max_examples=25, deadline=None)
@given(pop=populations(max_size=40))
def test_bt_invariants(pop):
    result = run_checked(pop, BinaryTree())
    check_invariants(pop, result)


@settings(max_examples=25, deadline=None)
@given(pop=populations(max_size=40))
def test_qt_invariants(pop):
    result = run_checked(pop, QueryTree())
    check_invariants(pop, result)
    # QT additionally: deterministic -- rerunning gives the same trace
    # length (preamble draws differ but the walk is ID-driven).
    pop.reset()
    again = Reader(QCDDetector(8)).run_inventory(pop.tags, QueryTree())
    assert len(again.trace) == len(result.trace)


@settings(max_examples=20, deadline=None)
@given(pop=populations(max_size=40), initial=st.integers(1, 32))
def test_dfsa_invariants(pop, initial):
    result = run_checked(pop, DynamicFSA(initial_frame_size=initial))
    check_invariants(pop, result)
