"""Tracer and sink unit tests."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import JsonlSink, RingBufferSink, Tracer


class TestSpans:
    def test_nesting_and_parent_ids(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                tracer.event("tick", n=7)
        spans = {s["name"]: s for s in sink.spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["attrs"] == {"a": 1}
        (event,) = sink.events("tick")
        assert event["span_id"] == spans["inner"]["span_id"]
        assert event["attrs"] == {"n": 7}

    def test_children_emitted_before_parents(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s["name"] for s in sink.spans()]
        assert names == ["inner", "outer"]

    def test_duration_nonnegative(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("s"):
            pass
        (span,) = sink.spans()
        assert span["duration"] >= 0
        assert span["end"] >= span["start"]

    def test_explicit_start_end(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.start_span("frame", frame=1)
        tracer.event("slot", index=0)
        tracer.end_span(slots=1)
        (span,) = sink.spans("frame")
        assert span["attrs"] == {"frame": 1, "slots": 1}
        assert tracer.depth == 0

    def test_end_span_without_open_raises(self):
        with pytest.raises(RuntimeError):
            Tracer(RingBufferSink()).end_span()

    def test_exception_unwinds_children(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.start_span("dangling")
                raise RuntimeError("boom")
        assert tracer.depth == 0
        spans = {s["name"]: s for s in sink.spans()}
        assert spans["dangling"]["attrs"] == {"aborted": True}

    def test_close_unwinds_and_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(JsonlSink(path))
        tracer.start_span("open")
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["name"] == "open"
        assert records[0]["attrs"] == {"aborted": True}


class TestSinks:
    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.event("e", i=i)
        assert [r["attrs"]["i"] for r in sink.records] == [7, 8, 9]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_jsonl_sink_appends_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("a"):
            tracer.event("b")
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "b"
        assert json.loads(lines[1])["name"] == "a"

    def test_null_sink_default(self):
        tracer = Tracer()
        with tracer.span("x"):
            tracer.event("y")  # nothing to assert: must simply not fail
        assert tracer.depth == 0
