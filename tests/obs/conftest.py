"""Shared fixtures: every obs test starts and ends with a clean, disabled
observability state (the registry is process-global)."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
