"""MetricsRegistry thread-safety under the serve layer's access pattern.

The server increments counters/histograms from ``asyncio.to_thread``
workers while ``/metrics`` renders on the event loop.  These tests hammer
that pattern directly: concurrent writers must lose no increments, and a
concurrent render must never produce torn Prometheus output (a histogram
whose ``_count`` disagrees with its +Inf bucket, or a half-created
child)."""

from __future__ import annotations

import re
import threading

from repro.obs.registry import MetricsRegistry

N_THREADS = 8
N_INCS = 2_000


def _run_threads(target, n=N_THREADS):
    start = threading.Barrier(n)

    def wrapped(i):
        start.wait()
        target(i)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestNoLostUpdates:
    def test_counter_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c")

        def work(_i):
            for _ in range(N_INCS):
                counter.inc()

        _run_threads(work)
        assert counter.total() == N_THREADS * N_INCS

    def test_labelled_counter_concurrent_child_creation(self):
        """All threads race to create the same children on first use."""
        registry = MetricsRegistry()

        def work(i):
            for k in range(N_INCS):
                registry.counter(
                    "c_total", "c", labelnames=("worker",)
                ).labels(worker=str(k % 4)).inc()

        _run_threads(work)
        family = registry.get("c_total")
        assert family.total() == N_THREADS * N_INCS
        assert len(list(family.samples())) == 4

    def test_histogram_concurrent_observes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.5, 1.0))

        def work(i):
            for k in range(N_INCS):
                hist.observe(0.25 if k % 2 else 0.75)

        _run_threads(work)
        (_, child), = registry.get("h_seconds").samples()
        assert child.count == N_THREADS * N_INCS
        assert child.cumulative_buckets()[-1][1] == N_THREADS * N_INCS

    def test_gauge_inc_dec_balance(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")

        def work(_i):
            for _ in range(N_INCS):
                gauge.inc()
                gauge.dec()

        _run_threads(work)
        (_, child), = registry.get("g").samples()
        assert child.value == 0


class TestNoTornRenders:
    def _assert_consistent(self, text: str) -> None:
        """Within one exposition every histogram child's ``_count``
        equals its +Inf bucket and its bucket counts are monotone."""
        buckets: dict[tuple[str, str], list[tuple[str, int]]] = {}
        counts: dict[tuple[str, str], int] = {}
        for line in text.splitlines():
            match = re.match(
                r'(\w+)_bucket\{(.*)le="([^"]+)"\} (\d+)$', line
            )
            if match:
                name, labels, le, value = match.groups()
                buckets.setdefault((name, labels), []).append(
                    (le, int(value))
                )
                continue
            match = re.match(r"(\w+)_count(?:\{([^}]*)\})? (\d+)$", line)
            if match:
                name, labels, value = match.groups()
                counts[(name, (labels or "") and labels + ",")] = int(value)
        assert counts, "no histogram children rendered"
        for key, count in counts.items():
            child_buckets = buckets[key]
            values = [v for _, v in child_buckets]
            assert values == sorted(values), "bucket counts not monotone"
            assert child_buckets[-1][0] == "+Inf"
            assert child_buckets[-1][1] == count, (
                f"{key}: +Inf bucket {child_buckets[-1][1]} != "
                f"_count {count}"
            )

    def test_render_during_writes_is_internally_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h_seconds", "h", labelnames=("stage",), buckets=(0.5, 1.0)
        )
        stop = threading.Event()
        renders: list[str] = []

        def writer(i):
            k = 0
            while not stop.is_set():
                hist.labels(stage=str(i % 2)).observe((k % 3) * 0.4)
                k += 1

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                renders.append(registry.to_prometheus())
        finally:
            stop.set()
            for t in threads:
                t.join()
        for text in renders:
            self._assert_consistent(text)

    def test_to_dict_snapshot_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(1.0,))
        stop = threading.Event()

        def writer(_i):
            while not stop.is_set():
                hist.observe(0.5)

        thread = threading.Thread(target=writer, args=(0,))
        thread.start()
        try:
            for _ in range(200):
                dump = registry.to_dict()
                sample = dump["h_seconds"]["samples"][0]
                assert sample["buckets"]["+Inf"] == sample["count"]
        finally:
            stop.set()
            thread.join()

    def test_merge_during_writes_takes_consistent_snapshots(self):
        """Merging a worker registry (the cross-process fold path) while
        the worker keeps writing must capture internally consistent
        histograms and never more than was actually written."""
        worker = MetricsRegistry()
        hist = worker.histogram("h_seconds", "h", buckets=(1.0,))
        stop = threading.Event()
        merged_counts: list[int] = []

        def writer(_i):
            while not stop.is_set():
                hist.observe(0.5)

        thread = threading.Thread(target=writer, args=(0,))
        thread.start()
        try:
            for _ in range(30):
                server = MetricsRegistry()
                server.merge(worker)
                (_, child), = server.get("h_seconds").samples()
                assert child.cumulative_buckets()[-1][1] == child.count
                merged_counts.append(child.count)
        finally:
            stop.set()
            thread.join()
        (_, final), = worker.get("h_seconds").samples()
        assert merged_counts == sorted(merged_counts)
        assert merged_counts[-1] <= final.count
