"""SimulationEngine EWMA thread-safety under the serve worker pattern.

``compute_point`` runs on ``asyncio.to_thread`` workers, so several
threads fold elapsed times into ``point_seconds_ewma`` concurrently.  The
read-modify-write must hold the engine lock: unguarded, two threads that
read the same old value silently drop one contribution (a lost update),
and the Retry-After estimates drift from the true service time.

The hammer test exploits that EWMA applications with the *same* sample
are applications of one affine function and therefore commute exactly,
even in floating point: barrier-synchronised rounds in which every
thread folds the same constant have a bit-exact expected result
regardless of within-round order -- any deviation is a lost update.
Per-opcode tracing makes each worker yield the GIL between bytecodes, so
an unguarded read-modify-write interleaves (and loses updates) on the
first contended round instead of relying on a lucky preemption."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.serve.workers import SimulationEngine

N_THREADS = 4
N_ROUNDS = 25


@pytest.fixture
def engine():
    eng = SimulationEngine(mc_workers=1)
    yield eng
    eng.close()


def _yield_every_opcode(frame, event, arg):
    if event == "call":
        frame.f_trace_opcodes = True
    elif event == "opcode":
        time.sleep(0)
    return _yield_every_opcode


def test_concurrent_ewma_updates_lose_nothing(engine):
    """Every fold must land: the concurrent result equals the serial
    left fold bit for bit.  Alternating samples keep the EWMA moving so
    convergence can never mask a lost update."""
    samples = [float(r % 2) for r in range(N_ROUNDS)]
    start = threading.Barrier(N_THREADS)
    done = threading.Barrier(N_THREADS)

    def work():
        for c in samples:
            start.wait()
            sys.settrace(_yield_every_opcode)
            try:
                engine._note_point_seconds(c)
            finally:
                sys.settrace(None)
            done.wait()

    threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    expected = 0.05
    for c in samples:
        for _ in range(N_THREADS):
            expected = 0.8 * expected + 0.2 * c
    assert engine.point_seconds_ewma == expected


def test_ewma_update_holds_engine_lock(engine):
    """The fold must serialize on the engine's own lock (the one suite
    creation already takes), not on a private or absent one."""
    before = engine.point_seconds_ewma
    with engine._lock:
        t = threading.Thread(
            target=engine._note_point_seconds, args=(1.0,)
        )
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive(), "update did not block on the engine lock"
        assert engine.point_seconds_ewma == before
    t.join()
    assert engine.point_seconds_ewma == 0.8 * before + 0.2 * 1.0
