"""Metrics registry unit tests: counters, gauges, histograms, exports."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("runs_total", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_schema_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "1abc", "with space", "dash-ed"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("slots_total", labelnames=("true_type",))
        fam.labels(true_type="IDLE").inc(3)
        fam.labels(true_type="SINGLE").inc(2)
        assert fam.labels(true_type="IDLE").value == 3
        assert fam.total() == 5

    def test_labelled_family_rejects_anonymous_access(self):
        reg = MetricsRegistry()
        fam = reg.counter("slots_total", labelnames=("k",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("slots_total", labelnames=("k",))
        with pytest.raises(ValueError):
            fam.labels(other="x")

    def test_counter_totals_grouping(self):
        reg = MetricsRegistry()
        fam = reg.counter("slots_total", labelnames=("true", "det"))
        fam.labels(true="A", det="A").inc(2)
        fam.labels(true="A", det="B").inc(3)
        fam.labels(true="B", det="B").inc(7)
        assert reg.counter_totals("slots_total") == 12
        assert reg.counter_totals("slots_total", by="true") == {
            "A": 5,
            "B": 7,
        }
        assert reg.counter_totals("missing") == 0
        assert reg.counter_totals("missing", by="true") == {}


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("present")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistograms:
    def test_observe_buckets(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(56.2)
        assert h.cumulative_buckets() == [
            (1.0, 2),
            (10.0, 3),
            (math.inf, 4),
        ]

    def test_buckets_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_default_buckets_are_valid(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))


class TestExports:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("runs_total", "Total runs").inc(3)
        fam = reg.counter("slots_total", "Slots", labelnames=("kind",))
        fam.labels(kind="idle").inc(2)
        reg.gauge("present", "Present tags").set(5)
        reg.histogram("lat", "Latency", buckets=(1.0, 2.0)).observe(1.5)
        return reg

    def test_prometheus_text(self):
        text = self._populated().to_prometheus()
        assert "# HELP runs_total Total runs" in text
        assert "# TYPE runs_total counter" in text
        assert "runs_total 3" in text
        assert 'slots_total{kind="idle"} 2' in text
        assert "# TYPE present gauge" in text
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("k",)).labels(k='a"b\\c').inc()
        text = reg.to_prometheus()
        assert 'k="a\\"b\\\\c"' in text

    def test_json_roundtrip(self):
        doc = json.loads(self._populated().to_json())
        assert doc["runs_total"]["type"] == "counter"
        assert doc["runs_total"]["samples"][0]["value"] == 3
        slots = doc["slots_total"]["samples"]
        assert slots == [{"labels": {"kind": "idle"}, "value": 2}]
        lat = doc["lat"]["samples"][0]
        assert lat["count"] == 1 and lat["buckets"]["+Inf"] == 1

    def test_reset(self):
        reg = self._populated()
        reg.reset()
        assert reg.to_prometheus() == ""
        assert reg.to_dict() == {}

    def test_empty_registry_exports(self):
        reg = MetricsRegistry()
        assert reg.to_prometheus() == ""
        assert json.loads(reg.to_json()) == {}


class TestMerge:
    """Registry merging (the parallel runner folds worker registries in)."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("runs_total").inc(3)
        b.counter("runs_total").inc(4)
        assert a.merge(b) is a
        assert a.counter("runs_total").value == 7

    def test_labeled_counters_merge_per_child(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("slots_total", labelnames=("kind",)).labels(kind="idle").inc(2)
        b.counter("slots_total", labelnames=("kind",)).labels(kind="idle").inc(5)
        b.counter("slots_total", labelnames=("kind",)).labels(kind="busy").inc(1)
        a.merge(b)
        fam = a.get("slots_total")
        assert fam.labels(kind="idle").value == 7
        assert fam.labels(kind="busy").value == 1

    def test_unknown_family_adopted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.gauge("depth").set(4)
        a.merge(b)
        assert a.get("depth").value == 4

    def test_gauges_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("present").set(2)
        b.gauge("present").set(3)
        a.merge(b)
        assert a.get("present").value == 5

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        h1 = a.histogram("t", buckets=(1.0, 10.0))
        h2 = b.histogram("t", buckets=(1.0, 10.0))
        h1.observe(0.5)
        h2.observe(5.0)
        h2.observe(50.0)
        a.merge(b)
        merged = a.get("t")._anonymous()
        assert merged.count == 3
        assert merged.sum == 55.5
        assert merged.cumulative_buckets() == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_type_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total")
        b.gauge("x_total")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_label_schema_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total", labelnames=("a",))
        b.counter("x_total", labelnames=("b",))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_bucket_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", buckets=(1.0,))
        b.histogram("t", buckets=(2.0,))
        b.get("t").observe(1.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty_is_noop(self):
        a = MetricsRegistry()
        a.counter("x_total").inc()
        a.merge(MetricsRegistry())
        assert a.counter("x_total").value == 1
