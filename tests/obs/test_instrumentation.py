"""Integration: the instrumented simulation stack vs trace ground truth.

The contract under test (see ``docs/OBSERVABILITY.md``): for any seeded
run, the registry's ``repro_slots_total`` grouped by either label equals
:func:`repro.sim.metrics.slot_counts` over the same run's trace -- for
the exact reader, the mobile engine, and the vectorized kernels alike --
and disabled mode touches the registry not at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.obs import instruments as inst
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.fast import bt_fast, dfsa_fast, fsa_fast
from repro.sim.metrics import slot_counts
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation


def counts_as_dict(counts):
    return {
        "IDLE": counts.idle,
        "SINGLE": counts.single,
        "COLLIDED": counts.collided,
    }


def observed(by):
    return {
        k: int(v) for k, v in obs.slot_totals(by=by).items() if v
    }


def drop_zeros(d):
    return {k: v for k, v in d.items() if v}


class TestExactReader:
    def run_small(self, seed=7, policy="paper", detector=None):
        pop = TagPopulation(60, id_bits=64, rng=make_rng(seed))
        reader = Reader(detector or QCDDetector(8), policy=policy)
        return reader.run_inventory(pop.tags, FramedSlottedAloha(32))

    def test_slot_counters_match_trace(self):
        sink = obs.RingBufferSink()
        obs.enable(sink=sink)
        result = self.run_small()
        obs.disable()
        assert observed("true_type") == drop_zeros(
            counts_as_dict(slot_counts(result.trace))
        )
        assert observed("detected_type") == drop_zeros(
            counts_as_dict(slot_counts(result.trace, detected=True))
        )

    def test_identified_and_inventory_counters(self):
        obs.enable()
        result = self.run_small()
        obs.disable()
        reg = obs.STATE.registry
        assert reg.get(inst.IDENTIFIED).value == len(result.identified_ids)
        assert reg.get(inst.INVENTORIES).labels(engine="reader").value == 1
        assert (
            reg.get(inst.FRAMES).labels(engine="reader").value
            == result.stats.frames
        )

    def test_lost_policy_counters(self):
        obs.enable()
        result = self.run_small(policy="lost", detector=QCDDetector(2))
        obs.disable()
        reg = obs.STATE.registry
        assert result.stats.lost_tags > 0  # seed chosen to lose tags
        assert reg.get(inst.LOST).value == result.stats.lost_tags
        missed = reg.get(inst.MISDETECTIONS).labels(kind="missed_collision")
        assert missed.value == result.stats.missed_collisions

    def test_span_tree_inventory_frame_slot(self):
        sink = obs.RingBufferSink(capacity=100_000)
        obs.enable(sink=sink)
        result = self.run_small()
        obs.disable()
        (inventory,) = sink.spans("inventory")
        frames = sink.spans("frame")
        slots = sink.events("slot")
        assert len(frames) == result.stats.frames
        assert all(f["parent_id"] == inventory["span_id"] for f in frames)
        frame_ids = {f["span_id"] for f in frames}
        assert len(slots) == len(result.trace)
        assert all(e["span_id"] in frame_ids for e in slots)
        assert inventory["attrs"]["slots"] == len(result.trace)

    def test_profile_histogram_recorded(self):
        obs.enable()
        self.run_small()
        obs.disable()
        fam = obs.STATE.registry.get(obs.PROFILE_METRIC)
        assert fam.labels(section="reader.run_inventory").count == 1

    def test_disabled_mode_leaves_registry_empty(self):
        self.run_small()
        assert obs.STATE.registry.to_dict() == {}


class TestKernels:
    @pytest.mark.parametrize("scheme", ["fsa", "bt", "dfsa"])
    def test_kernel_counters_match_stats(self, scheme):
        rng = np.random.default_rng(11)
        timing = TimingModel()
        obs.enable()
        if scheme == "fsa":
            stats = fsa_fast(500, 300, QCDDetector(4), timing, rng)
            engine = "fast_fsa"
        elif scheme == "bt":
            stats = bt_fast(500, QCDDetector(4), timing, rng)
            engine = "fast_bt"
        else:
            from repro.protocols.estimators import LowerBoundEstimator

            stats = dfsa_fast(
                500, 64, LowerBoundEstimator(), QCDDetector(4), timing, rng
            )
            engine = "fast_dfsa"
        obs.disable()
        assert observed("true_type") == drop_zeros(
            counts_as_dict(stats.true_counts)
        )
        assert observed("detected_type") == drop_zeros(
            counts_as_dict(stats.detected_counts)
        )
        reg = obs.STATE.registry
        assert reg.get(inst.IDENTIFIED).value == stats.true_counts.single
        assert reg.get(inst.INVENTORIES).labels(engine=engine).value == 1
        fam = reg.get(obs.PROFILE_METRIC)
        assert fam.labels(section=f"fast.{scheme}_fast").count == 1


class TestDrivers:
    def test_monitoring_counters(self):
        from repro.sim.monitoring import ContinuousMonitor

        pop = TagPopulation(30, id_bits=32, rng=make_rng(4))
        monitor = ContinuousMonitor(
            Reader(QCDDetector(8)),
            FramedSlottedAloha(16),
            rng=make_rng(3),
            id_bits=32,
        )
        obs.enable()
        monitor.run(pop.tags, rounds=3, churn=2)
        obs.disable()
        reg = obs.STATE.registry
        assert reg.get(inst.MONITOR_ROUNDS).value == 3
        churn = reg.get(inst.MONITOR_CHURN)
        assert churn.labels(kind="arrival").value == 4
        assert churn.labels(kind="departure").value == 4
        assert reg.get(inst.MONITOR_PRESENT).value == 30

    def test_mobile_engine_counters(self):
        from repro.sim.engine import MobileInventoryEngine
        from repro.tags.mobility import MobilitySchedule
        from repro.tags.tag import Tag

        from repro.tags.mobility import MobilityEvent

        stream = make_rng(9)
        tags = [
            Tag(tag_id=i, id_bits=32, rng=stream.child()) for i in range(12)
        ]
        schedule = MobilitySchedule(
            MobilityEvent(time=float(i), seq=i, kind="arrive", tag=t)
            for i, t in enumerate(tags)
        )
        engine = MobileInventoryEngine(Reader(QCDDetector(8)))
        obs.enable()
        result = engine.run(FramedSlottedAloha(8), schedule)
        obs.disable()
        reg = obs.STATE.registry
        arrive = reg.get(inst.MOBILITY_EVENTS).labels(kind="arrive")
        assert arrive.value == len(tags)
        assert observed("true_type") == drop_zeros(
            counts_as_dict(slot_counts(result.trace))
        )
        assert reg.get(inst.INVENTORIES).labels(engine="mobile").value == 1

    def test_multireader_counters(self):
        from repro.sim.deployment import Deployment
        from repro.sim.multireader import run_multireader_inventory

        deployment = Deployment.table5(
            100, make_rng(12), n_readers=9, reader_range=15.0
        )
        timing = TimingModel(id_bits=96)  # deployment tags carry EPCs
        obs.enable()
        run_multireader_inventory(
            deployment,
            lambda rid: Reader(QCDDetector(8), timing),
            lambda rid: FramedSlottedAloha(16),
        )
        obs.disable()
        reg = obs.STATE.registry
        assert reg.get(inst.SWEEPS).value == 1
        assert reg.get(inst.INVENTORIES).labels(engine="reader").value >= 1

    def test_runner_grid_counters(self):
        from repro.experiments.runner import ExperimentSuite

        suite = ExperimentSuite(rounds=2, seed=1)
        obs.enable()
        suite.run("I", "fsa", "qcd-8")
        suite.run("I", "bt", "crc")
        suite.run("I", "fsa", "qcd-8")  # cached: no second increment
        obs.disable()
        reg = obs.STATE.registry
        grid = reg.get(inst.GRID_POINTS)
        assert (
            grid.labels(case="I", protocol="fsa", scheme="qcd-8").value == 1
        )
        assert grid.labels(case="I", protocol="bt", scheme="crc").value == 1
        assert reg.get(inst.MC_ROUNDS).value == 4
