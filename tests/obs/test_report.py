"""Offline analyzer tests: bucket percentiles, trace summaries, CLI."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    histogram_percentiles,
    histogram_quantile,
    load_trace,
    main,
    metrics_percentile_rows,
    render_serve_report,
    serve_attribution,
    serve_stage_stats,
    span_tree_lines,
    spans_for_request,
)

INF = float("inf")


class TestHistogramQuantile:
    def test_empty_and_zero_total_are_nan(self):
        assert math.isnan(histogram_quantile([], 50))
        assert math.isnan(histogram_quantile([(1.0, 0), (INF, 0)], 50))

    def test_interpolates_within_bucket(self):
        # 100 observations uniformly inside (0, 1]: p50 ~ 0.5.
        buckets = [(1.0, 100), (INF, 100)]
        assert histogram_quantile(buckets, 50) == pytest.approx(0.5)
        assert histogram_quantile(buckets, 90) == pytest.approx(0.9)

    def test_interpolates_between_edges(self):
        # 50 in (0,1], 50 in (1,3]: p75 is halfway through (1,3].
        buckets = [(1.0, 50), (3.0, 100), (INF, 100)]
        assert histogram_quantile(buckets, 75) == pytest.approx(2.0)
        assert histogram_quantile(buckets, 50) == pytest.approx(1.0)

    def test_inf_bucket_saturates_to_last_finite_edge(self):
        buckets = [(1.0, 10), (INF, 20)]
        assert histogram_quantile(buckets, 99) == 1.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile([(1.0, 1), (INF, 1)], 101)

    def test_percentile_dict_shape(self):
        pct = histogram_percentiles([(2.0, 4), (INF, 4)])
        assert set(pct) == {"p50", "p90", "p99"}

    def test_matches_exact_on_dense_buckets(self):
        # With one bucket per distinct value the estimator is exact at
        # bucket edges.
        values = [0.1 * i for i in range(1, 101)]
        edges = sorted(set(values))
        cum = []
        count = 0
        for edge in edges:
            count += sum(1 for v in values if v <= edge) - count
            cum.append((edge, count))
        cum.append((INF, count))
        assert histogram_quantile(cum, 100) == pytest.approx(10.0)


class TestMetricsRows:
    def test_rows_from_registry_dump(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_serve_stage_seconds",
            "stage time",
            labelnames=("stage",),
            buckets=(0.1, 1.0),
        )
        for _ in range(10):
            hist.labels(stage="compute").observe(0.05)
        registry.counter("repro_slots_total", "slots").inc()
        rows = metrics_percentile_rows(registry.to_dict())
        assert len(rows) == 1  # counters are skipped
        (row,) = rows
        assert row["histogram"] == "repro_serve_stage_seconds{stage=compute}"
        assert row["count"] == "10"
        assert float(row["p50"]) == pytest.approx(0.05)

    def test_name_filter(self):
        registry = MetricsRegistry()
        registry.histogram("repro_a_seconds", "a").observe(1.0)
        registry.histogram("repro_b_seconds", "b").observe(1.0)
        rows = metrics_percentile_rows(
            registry.to_dict(), names=["repro_b_seconds"]
        )
        assert [r["histogram"] for r in rows] == ["repro_b_seconds"]


def _span(
    name, span_id, parent_id, start, end, trace_id="req-x", **attrs
):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": start,
        "end": end,
        "duration": end - start,
        "attrs": attrs,
        "trace_id": trace_id,
    }


@pytest.fixture
def trace_records():
    """One sync request: request > queue_wait + coalesce(compute) + stream."""
    return [
        _span("serve.request", 1, None, 0.0, 1.0),
        _span("serve.queue_wait", 2, 1, 0.0, 0.1),
        _span("serve.coalesce", 3, 1, 0.1, 0.8),
        _span("serve.compute", 4, 3, 0.1, 0.75),
        _span("grid_point", 5, 4, 0.11, 0.74),
        _span("serve.stream", 6, 1, 0.8, 0.95),
        {"type": "event", "name": "slot", "span_id": 5, "time": 0.5,
         "attrs": {}, "trace_id": "req-x"},
    ]


class TestTraceAnalysis:
    def test_spans_for_request_filters_events_and_other_traces(
        self, trace_records
    ):
        other = _span("serve.request", 9, None, 0.0, 0.1, trace_id="req-y")
        spans = spans_for_request([*trace_records, other], "req-x")
        assert len(spans) == 6
        assert all(s["trace_id"] == "req-x" for s in spans)

    def test_span_tree_lines_nest(self, trace_records):
        lines = span_tree_lines(spans_for_request(trace_records, "req-x"))
        assert len(lines) == 6
        assert lines[0].endswith("serve.request")
        # grid_point sits under compute under coalesce under request.
        grid = next(line for line in lines if "grid_point" in line)
        assert grid.endswith("      grid_point")

    def test_span_tree_keeps_orphans(self):
        # An async job's point spans parent to a span id that is not in
        # the file window; they must still render as roots.
        spans = [_span("serve.coalesce", 10, 999, 0.0, 0.5)]
        lines = span_tree_lines(spans)
        assert len(lines) == 1 and "serve.coalesce" in lines[0]

    def test_stage_stats(self, trace_records):
        stats = serve_stage_stats(trace_records)
        assert stats["serve.request"]["n"] == 1
        assert stats["serve.coalesce"]["p50"] == pytest.approx(0.7)
        assert "grid_point" not in stats  # only serve.* spans

    def test_attribution_max_over_points_and_unattributed(
        self, trace_records
    ):
        (entry,) = serve_attribution(trace_records)
        assert entry["request_id"] == "req-x"
        assert entry["total_s"] == pytest.approx(1.0)
        assert entry["stages_s"]["serve.coalesce"] == pytest.approx(0.7)
        # 1.0 - (0.1 + 0.7 + 0.15) = 0.05 outside any stage span.
        assert entry["unattributed_s"] == pytest.approx(0.05)

    def test_attribution_sorts_slowest_first(self, trace_records):
        fast = [
            _span("serve.request", 20, None, 0.0, 0.2, trace_id="req-f")
        ]
        entries = serve_attribution([*fast, *trace_records])
        assert [e["request_id"] for e in entries] == ["req-x", "req-f"]

    def test_render_report_mentions_stages(self, trace_records):
        text = render_serve_report(trace_records)
        assert "serve.coalesce" in text
        assert "critical-path attribution" in text
        assert "req-x" in text

    def test_render_report_empty(self):
        assert "no serve.* spans" in render_serve_report([])


class TestCli:
    def _write_trace(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records) + "not json\n"
        )

    def test_serve_summary(self, tmp_path, capsys, trace_records):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, trace_records)
        assert main(["serve", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out

    def test_serve_request_tree(self, tmp_path, capsys, trace_records):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, trace_records)
        assert main(["serve", str(trace), "--request-id", "req-x"]) == 0
        out = capsys.readouterr().out
        assert "span tree for req-x" in out
        assert "grid_point" in out

    def test_serve_unknown_request_id_fails(
        self, tmp_path, capsys, trace_records
    ):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, trace_records)
        assert main(["serve", str(trace), "--request-id", "nope"]) == 1

    def test_metrics_dump(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.histogram("repro_profile_seconds", "p").observe(0.01)
        dump = tmp_path / "metrics.json"
        dump.write_text(registry.to_json())
        assert main(["metrics", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "repro_profile_seconds" in out

    def test_load_trace_skips_malformed(self, tmp_path, trace_records):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, trace_records)
        records = load_trace(trace)
        assert len(records) == len(trace_records)
