"""Profiling timer tests: disabled no-op path and enabled histograms."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.profiling import PROFILE_METRIC, profile, profiled


class TestDisabled:
    def test_profile_returns_shared_noop(self):
        assert profile("a") is profile("b")

    def test_no_metrics_created(self):
        with profile("section"):
            pass
        assert obs.STATE.registry.get(PROFILE_METRIC) is None

    def test_profiled_decorator_passthrough(self):
        @profiled("section")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert obs.STATE.registry.get(PROFILE_METRIC) is None


class TestEnabled:
    def test_observations_recorded_per_section(self):
        obs.enable()
        with profile("alpha"):
            time.sleep(0.001)
        with profile("alpha"):
            pass
        with profile("beta"):
            pass
        fam = obs.STATE.registry.get(PROFILE_METRIC)
        alpha = fam.labels(section="alpha")
        beta = fam.labels(section="beta")
        assert alpha.count == 2
        assert beta.count == 1
        assert alpha.sum >= 0.001

    def test_decorator_records_and_returns(self):
        obs.enable()

        @profiled("gamma")
        def mul(a, b):
            return a * b

        assert mul(3, 4) == 12
        fam = obs.STATE.registry.get(PROFILE_METRIC)
        assert fam.labels(section="gamma").count == 1

    def test_timer_records_on_exception(self):
        obs.enable()
        try:
            with profile("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        fam = obs.STATE.registry.get(PROFILE_METRIC)
        assert fam.labels(section="failing").count == 1
