"""Request-scoped trace context: binding, nesting, thread propagation."""

from __future__ import annotations

import asyncio

from repro.obs import (
    RingBufferSink,
    STATE,
    Tracer,
    bound_context,
    current_request_id,
    current_tracer,
    new_request_id,
)


class TestBinding:
    def test_unbound_defaults(self):
        assert current_tracer() is None
        assert current_request_id() is None

    def test_bound_context_sets_and_restores(self):
        tracer = Tracer(RingBufferSink())
        with bound_context(tracer=tracer, request_id="req-1"):
            assert current_tracer() is tracer
            assert current_request_id() == "req-1"
        assert current_tracer() is None
        assert current_request_id() is None

    def test_partial_binding_leaves_other_variable(self):
        with bound_context(request_id="req-outer"):
            tracer = Tracer(RingBufferSink())
            with bound_context(tracer=tracer):
                assert current_request_id() == "req-outer"
                assert current_tracer() is tracer
            assert current_tracer() is None
            assert current_request_id() == "req-outer"

    def test_nested_bindings_unwind_in_order(self):
        with bound_context(request_id="a"):
            with bound_context(request_id="b"):
                assert current_request_id() == "b"
            assert current_request_id() == "a"

    def test_new_request_id_shape_and_uniqueness(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("req-") for rid in ids)


class TestStateTracerProperty:
    def test_state_tracer_prefers_bound(self):
        base = STATE.tracer
        bound = Tracer(RingBufferSink())
        with bound_context(tracer=bound):
            assert STATE.tracer is bound
        assert STATE.tracer is base

    def test_state_tracer_setter_sets_base(self):
        original = STATE.tracer
        replacement = Tracer(RingBufferSink())
        try:
            STATE.tracer = replacement
            assert STATE.tracer is replacement
            with bound_context(tracer=Tracer(RingBufferSink())):
                assert STATE.tracer is not replacement
            assert STATE.tracer is replacement
        finally:
            STATE.tracer = original


class TestThreadPropagation:
    def test_to_thread_inherits_bound_tracer(self):
        """``asyncio.to_thread`` copies the caller's context, so spans
        emitted on the worker thread land on the request's tracer --
        the mechanism nesting engine spans under serve spans."""
        sink = RingBufferSink()
        tracer = Tracer(sink, trace_id="req-thread")

        def blocking_work():
            bound = current_tracer()
            assert bound is tracer
            with bound.span("inner"):
                pass
            return current_request_id()

        async def main():
            with bound_context(tracer=tracer, request_id="req-thread"):
                with tracer.span("outer"):
                    return await asyncio.to_thread(blocking_work)

        rid = asyncio.run(main())
        assert rid == "req-thread"
        spans = sink.spans()
        names = [s["name"] for s in spans]
        assert names == ["inner", "outer"]  # inner closes first
        inner = spans[0]
        outer = spans[1]
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == "req-thread"

    def test_concurrent_tasks_do_not_leak_bindings(self):
        async def task(rid: str, results: dict):
            with bound_context(request_id=rid):
                await asyncio.sleep(0)
                results[rid] = current_request_id()

        async def main():
            results: dict = {}
            await asyncio.gather(
                task("req-a", results), task("req-b", results)
            )
            return results

        results = asyncio.run(main())
        assert results == {"req-a": "req-a", "req-b": "req-b"}


class TestTracerIdentity:
    def test_span_ids_unique_across_tracers(self):
        sink = RingBufferSink()
        t1 = Tracer(sink, trace_id="req-1")
        t2 = Tracer(sink, trace_id="req-2")
        with t1.span("a"):
            pass
        with t2.span("b"):
            pass
        ids = [s["span_id"] for s in sink.spans()]
        assert len(set(ids)) == len(ids)

    def test_root_parent_id_grafts_top_level_spans(self):
        sink = RingBufferSink()
        tracer = Tracer(sink, trace_id="req-1", root_parent_id=777)
        with tracer.span("child"):
            pass
        (span,) = sink.spans()
        assert span["parent_id"] == 777
        assert span["trace_id"] == "req-1"

    def test_emit_span_retroactive(self):
        sink = RingBufferSink()
        tracer = Tracer(sink, trace_id="req-1", root_parent_id=5)
        span_id = tracer.emit_span("serve.queue_wait", 10.0, 10.25, k="v")
        (span,) = sink.spans()
        assert span["span_id"] == span_id
        assert span["parent_id"] == 5
        assert span["duration"] == 0.25
        assert span["attrs"] == {"k": "v"}
        assert tracer.depth == 0  # never touched the stack
