"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bits.rng import RngStream, make_rng
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation


@pytest.fixture
def rng() -> RngStream:
    """A deterministic root random stream."""
    return make_rng(12345)


@pytest.fixture
def timing() -> TimingModel:
    """The paper's timing constants (τ=1, l_id=64, l_crc=32)."""
    return TimingModel()


@pytest.fixture
def make_population(rng):
    """Factory for small reproducible populations."""

    def _make(size: int, id_bits: int = 64, layout: str = "uniform"):
        return TagPopulation(size, id_bits=id_bits, rng=rng.child(), layout=layout)

    return _make
