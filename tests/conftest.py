"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.bits.rng import RngStream, make_rng
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation

# "ci" replays a fixed example sequence (derandomize) so CI failures are
# reproducible and never flake on a fresh random draw; "dev" keeps the
# random exploration but drops the per-example deadline, which trips on
# loaded laptops.  Select with HYPOTHESIS_PROFILE=ci|dev (default: the
# built-in profile).
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)


@pytest.fixture
def rng() -> RngStream:
    """A deterministic root random stream."""
    return make_rng(12345)


@pytest.fixture
def timing() -> TimingModel:
    """The paper's timing constants (τ=1, l_id=64, l_crc=32)."""
    return TimingModel()


@pytest.fixture
def make_population(rng):
    """Factory for small reproducible populations."""

    def _make(size: int, id_bits: int = 64, layout: str = "uniform"):
        return TagPopulation(size, id_bits=id_bits, rng=rng.child(), layout=layout)

    return _make
