"""End-to-end integration tests: the paper's headline claims, verified
through the public API on laptop-scale versions of its experiments."""

from __future__ import annotations

import statistics

import pytest

from repro import (
    BinaryTree,
    CRCCDDetector,
    FramedSlottedAloha,
    QCDDetector,
    QueryTree,
    Reader,
    TagPopulation,
    TimingModel,
    make_rng,
)
from repro.analysis.ei import bt_ei_average, fsa_ei_lower_bound, measured_ei


def inventory_time(detector, protocol_factory, n=100, seed=0, rounds=5):
    times = []
    for r in range(rounds):
        pop = TagPopulation(n, rng=make_rng(seed + r))
        reader = Reader(detector, TimingModel())
        result = reader.run_inventory(pop.tags, protocol_factory())
        assert result.stats.true_counts.single == n
        times.append(result.stats.total_time)
    return statistics.mean(times)


class TestHeadlineClaim:
    """Abstract: 'QCD improves the identification efficiency by 40%.'"""

    def test_fsa_ei_exceeds_40_percent(self):
        t_crc = inventory_time(CRCCDDetector(id_bits=64), lambda: FramedSlottedAloha(100))
        t_qcd = inventory_time(QCDDetector(8), lambda: FramedSlottedAloha(100))
        assert measured_ei(t_crc, t_qcd) > 0.40

    def test_bt_ei_exceeds_40_percent(self):
        t_crc = inventory_time(CRCCDDetector(id_bits=64), BinaryTree)
        t_qcd = inventory_time(QCDDetector(8), BinaryTree)
        assert measured_ei(t_crc, t_qcd) > 0.40

    def test_qt_also_benefits(self):
        """QCD plugs into any slotted protocol -- 'seamlessly adopted by
        current anti-collision algorithms'."""
        t_crc = inventory_time(CRCCDDetector(id_bits=64), QueryTree)
        t_qcd = inventory_time(QCDDetector(8), QueryTree)
        assert measured_ei(t_crc, t_qcd) > 0.30


class TestMeasuredVsTheory:
    def test_fsa_measured_ei_at_least_lower_bound(self):
        """Table II gives a *lower* bound at the FSA optimum; off-optimal
        frames only help QCD."""
        t_crc = inventory_time(
            CRCCDDetector(id_bits=64), lambda: FramedSlottedAloha(60), n=100
        )
        t_qcd = inventory_time(
            QCDDetector(8), lambda: FramedSlottedAloha(60), n=100
        )
        assert measured_ei(t_crc, t_qcd) >= fsa_ei_lower_bound(8) - 0.02

    def test_bt_measured_ei_near_average(self):
        t_crc = inventory_time(CRCCDDetector(id_bits=64), BinaryTree, n=150, rounds=8)
        t_qcd = inventory_time(QCDDetector(8), BinaryTree, n=150, rounds=8)
        assert measured_ei(t_crc, t_qcd) == pytest.approx(
            bt_ei_average(8), abs=0.05
        )


class TestStrengthTradeoff:
    """Section VI: higher strength -> better accuracy, lower EI/UR."""

    def test_ei_decreases_with_strength(self):
        times = {
            s: inventory_time(QCDDetector(s), lambda: FramedSlottedAloha(100))
            for s in (4, 8, 16)
        }
        assert times[4] < times[8] < times[16]

    def test_accuracy_increases_with_strength(self):
        accs = {}
        for s in (2, 4, 8):
            vals = []
            for r in range(5):
                pop = TagPopulation(100, rng=make_rng(50 + r))
                res = Reader(QCDDetector(s)).run_inventory(
                    pop.tags, FramedSlottedAloha(64)
                )
                vals.append(res.stats.accuracy)
            accs[s] = statistics.mean(vals)
        assert accs[2] < accs[4] < accs[8] <= 1.0


class TestDelayClaim:
    """Section VI-D: QCD reduces identification delay dramatically and
    concentrates it."""

    def test_delay_reduction_over_60_percent(self):
        def delays(detector):
            pop = TagPopulation(100, rng=make_rng(123))
            res = Reader(detector, TimingModel()).run_inventory(
                pop.tags, FramedSlottedAloha(100)
            )
            return res.stats.delay

        d_crc = delays(CRCCDDetector(id_bits=64))
        d_qcd = delays(QCDDetector(8))
        assert d_qcd.mean < 0.4 * d_crc.mean
        assert d_qcd.std < d_crc.std


class TestVariableSlotMechanism:
    """The mechanism behind all of it: QCD's idle/collided slots are 6x
    shorter than CRC-CD's."""

    def test_slot_length_ratio(self):
        timing = TimingModel()
        from repro.core.detector import SlotType

        crc_idle = timing.slot_duration(CRCCDDetector(id_bits=64), SlotType.IDLE)
        qcd_idle = timing.slot_duration(QCDDetector(8), SlotType.IDLE)
        assert crc_idle / qcd_idle == 6.0
