"""Hypothesis properties for the gateway codec.

The invariants the wire plane rests on:

* every valid frame round-trips bit-exactly through encode/decode;
* a valid stream split at *every* byte boundary reassembles to the same
  frames as feeding it whole;
* malformed input NEVER raises anything but :class:`FrameError` from
  ``decode_frame``, and never raises at all from the reassembler (typed
  error values instead);
* the reassembler's buffer stays bounded regardless of input.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gateway.codec import (
    MAX_PAYLOAD,
    Frame,
    FrameError,
    FrameReassembler,
    HEADER_BYTE,
    decode_frame,
    encode_frame,
)
from repro.verify.strategies import (
    binary_frames,
    gateway_frames,
    malformed_binary_frames,
)

#: One complete frame never outgrows header + payload cap + trailer.
MAX_FRAME_BYTES = 5 + MAX_PAYLOAD + 2

#: The first draw in a fresh process pays one-time warmup (Hypothesis
#: database + example cache); the strategies themselves are fast, so
#: don't let that warmup trip the ``too_slow`` health check.
relaxed = settings(suppress_health_check=[HealthCheck.too_slow])


class TestRoundTrip:
    @relaxed
    @given(frame=gateway_frames())
    def test_encode_decode_identity(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    @relaxed
    @given(frame=gateway_frames())
    def test_wire_shape(self, frame):
        data = encode_frame(frame)
        assert data[0] == HEADER_BYTE
        length = int.from_bytes(data[3:5], "big")
        assert len(data) == 5 + length + 2
        assert length <= MAX_PAYLOAD


class TestReassembly:
    @relaxed
    @given(frames=st.lists(gateway_frames(), min_size=1, max_size=4))
    def test_split_at_every_byte(self, frames):
        """Byte-by-byte delivery reassembles identically to one feed."""
        blob = b"".join(encode_frame(f) for f in frames)
        re = FrameReassembler()
        out: list[Frame | FrameError] = []
        for i in range(len(blob)):
            out.extend(re.feed(blob[i : i + 1]))
        assert out == frames
        assert re.finish() is None
        assert re.frames_ok == len(frames)
        assert re.frames_bad == 0

    @relaxed
    @given(
        frames=st.lists(gateway_frames(), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_arbitrary_chunking_is_invisible(self, frames, data):
        blob = b"".join(encode_frame(f) for f in frames)
        re = FrameReassembler()
        out: list[Frame | FrameError] = []
        rest = blob
        while rest:
            cut = data.draw(st.integers(1, len(rest)))
            out.extend(re.feed(rest[:cut]))
            rest = rest[cut:]
        assert out == frames

    @relaxed
    @given(
        prefix=st.binary(max_size=32).filter(
            lambda b: HEADER_BYTE not in b
        ),
        frame=gateway_frames(),
        suffix=st.binary(max_size=32),
    )
    def test_frame_recovered_from_noise(self, prefix, frame, suffix):
        """A frame preceded by sync-free noise is always recovered (a
        false sync *inside* leading noise may legitimately hold bytes
        hostage until more data or EOF, hence the prefix filter)."""
        re = FrameReassembler()
        out = list(re.feed(prefix + encode_frame(frame) + suffix))
        frames = [f for f in out if not isinstance(f, FrameError)]
        assert frames[0] == frame
        assert re.garbage_bytes >= len(prefix)


class TestMalformed:
    @relaxed
    @given(case=malformed_binary_frames())
    def test_decode_raises_only_frame_error(self, case):
        rule, blob = case
        try:
            decode_frame(blob)
        except FrameError as exc:
            assert exc.code in ("malformed_frame", "bad_crc", "unsupported", "bad_param"), rule
        else:
            raise AssertionError(f"{rule}: decoded a malformed blob")

    @relaxed
    @given(
        cases=st.lists(malformed_binary_frames(), min_size=1, max_size=4),
        frame=gateway_frames(),
    )
    def test_reassembler_never_raises(self, cases, frame):
        """Malformed blobs interleaved with a valid frame: only typed
        values come out, nothing is raised, and the buffer stays
        bounded."""
        re = FrameReassembler()
        out: list[Frame | FrameError] = []
        for _rule, blob in cases:
            out.extend(re.feed(blob))
        out.extend(re.feed(encode_frame(frame)))
        tail = re.finish()
        for item in out:
            assert isinstance(item, (FrameError, *Frame.__args__))
        assert tail is None or isinstance(tail, FrameError)
        assert re.pending == 0  # finish() always clears

    @relaxed
    @given(case=malformed_binary_frames(), data=st.data())
    def test_buffer_stays_bounded(self, case, data):
        _rule, blob = case
        re = FrameReassembler()
        rest = blob
        while rest:
            cut = data.draw(st.integers(1, len(rest)))
            for _ in re.feed(rest[:cut]):
                pass
            rest = rest[cut:]
            assert re.pending <= MAX_FRAME_BYTES

    @settings(
        max_examples=30, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(blob=st.binary(min_size=0, max_size=512))
    def test_pure_fuzz_never_crashes(self, blob):
        re = FrameReassembler()
        for item in re.feed(blob):
            assert isinstance(item, (FrameError, *Frame.__args__))
        tail = re.finish()
        assert tail is None or isinstance(tail, FrameError)


class TestEncodedFrames:
    @relaxed
    @given(blob=binary_frames())
    def test_strategy_emits_decodable_bytes(self, blob):
        frame = decode_frame(blob)
        assert encode_frame(frame) == blob
