"""Codec tests: round-trips, typed decode errors, reassembly, and the
golden-bytes compatibility contract."""

from __future__ import annotations

import json
import struct
from pathlib import Path

import pytest

from repro.gateway import codec
from repro.gateway.codec import (
    MAX_PAYLOAD,
    Capabilities,
    ErrorFrame,
    FrameError,
    FrameReassembler,
    GetCapabilities,
    InventoryComplete,
    InventoryStarted,
    InventoryStopped,
    Keepalive,
    KeepaliveAck,
    StartInventory,
    StopInventory,
    TagReport,
    crc16,
    decode_frame,
    decode_scheme,
    encode_frame,
    encode_scheme,
)

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_gateway_frames.json"

#: The canonical frame objects behind ``golden_gateway_frames.json``.
#: Changing the codec so any of these encodes differently is a protocol
#: break: regenerate the JSON only on a deliberate rev of
#: ``GATEWAY_VERSION``.
GOLDEN_FRAMES = {
    "get_capabilities": GetCapabilities(),
    "capabilities": Capabilities(
        version=1,
        n_readers=4,
        max_tags=50000,
        max_frame_size=32768,
        protocols=("fsa", "dfsa"),
        detectors=("crc", "qcd"),
        max_qcd_strength=64,
    ),
    "start_inventory_fsa_qcd": StartInventory(
        reader_id=0,
        protocol="fsa",
        scheme="qcd-16",
        frame_size=64,
        n_tags=200,
        seed=42,
    ),
    "start_inventory_dfsa_crc": StartInventory(
        reader_id=3,
        protocol="dfsa",
        scheme="crc",
        frame_size=16,
        n_tags=50000,
        seed=123456789,
    ),
    "inventory_started": InventoryStarted(reader_id=0, session=1),
    "stop_inventory": StopInventory(reader_id=2),
    "inventory_stopped": InventoryStopped(reader_id=2, session=7),
    "keepalive": Keepalive(),
    "keepalive_ack": KeepaliveAck(),
    "tag_report": TagReport(
        reader_id=1,
        session=3,
        slot=20,
        frame=1,
        tag_id=0x2882854FB05FE3DF,
        airtime=736.0,
    ),
    "inventory_complete": InventoryComplete(
        reader_id=1,
        session=3,
        identified=200,
        lost=0,
        slots=960,
        frames=15,
        airtime=43520.0,
        stopped=False,
    ),
    "inventory_complete_stopped": InventoryComplete(
        reader_id=0,
        session=9,
        identified=12,
        lost=1,
        slots=64,
        frames=2,
        airtime=1984.0,
        stopped=True,
    ),
    "error_busy": ErrorFrame(
        code="busy", message="reader 0 is busy with session 1"
    ),
    "error_bad_crc": ErrorFrame(
        code="bad_crc",
        message="CRC mismatch: frame carries 0xDEAD, computed 0xBEEF",
    ),
}


def _golden_entries():
    doc = json.loads(GOLDEN_PATH.read_text())
    return doc["frames"]


class TestGoldenFrames:
    def test_every_golden_name_has_a_frame(self):
        names = {entry["name"] for entry in _golden_entries()}
        assert names == set(GOLDEN_FRAMES)

    @pytest.mark.parametrize(
        "entry", _golden_entries(), ids=lambda e: e["name"]
    )
    def test_encode_is_pinned(self, entry):
        frame = GOLDEN_FRAMES[entry["name"]]
        assert encode_frame(frame).hex() == entry["hex"]
        assert type(frame).__name__ == entry["type"]

    @pytest.mark.parametrize(
        "entry", _golden_entries(), ids=lambda e: e["name"]
    )
    def test_decode_is_pinned(self, entry):
        assert decode_frame(bytes.fromhex(entry["hex"])) == GOLDEN_FRAMES[
            entry["name"]
        ]

    def test_frame_layout_by_hand(self):
        # STOP(reader 2): AA | 03 00 | 0001 | 02 | crc(03 00 00 01 02).
        data = encode_frame(StopInventory(reader_id=2))
        assert data[0] == 0xAA
        assert data[1:3] == bytes([0x03, 0x00])
        assert data[3:5] == (1).to_bytes(2, "big")
        assert data[5] == 2
        assert data[-2:] == crc16(data[1:-2]).to_bytes(2, "big")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame", list(GOLDEN_FRAMES.values()), ids=lambda f: type(f).__name__
    )
    def test_encode_decode_identity(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_scheme_codec_inverse(self):
        for scheme in ("crc", "qcd-1", "qcd-16", "qcd-64"):
            assert decode_scheme(*encode_scheme(scheme)) == scheme

    def test_encode_scheme_rejects_junk(self):
        for bad in ("qcd-0", "qcd-65", "qcd-", "ideal", "QCD-4", "qcd-1.5"):
            with pytest.raises(ValueError):
                encode_scheme(bad)

    def test_decode_scheme_rejects_junk(self):
        with pytest.raises(FrameError) as exc_info:
            decode_scheme(0x01, 65)
        assert exc_info.value.code == "bad_param"
        with pytest.raises(FrameError):
            decode_scheme(0x07, 0)

    def test_error_message_truncated_to_payload_cap(self):
        frame = ErrorFrame(code="internal", message="x" * (2 * MAX_PAYLOAD))
        data = encode_frame(frame)
        decoded = decode_frame(data)
        assert isinstance(decoded, ErrorFrame)
        assert decoded.code == "internal"
        assert len(decoded.message.encode()) == MAX_PAYLOAD - 1


class TestDecodeErrors:
    """``decode_frame`` raises FrameError -- and only FrameError."""

    def test_too_short(self):
        with pytest.raises(FrameError) as exc_info:
            decode_frame(b"\xaa\x01\x00")
        assert exc_info.value.code == "malformed_frame"

    def test_bad_header_byte(self):
        data = bytearray(encode_frame(Keepalive()))
        data[0] = 0x55
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(data))
        assert exc_info.value.code == "malformed_frame"

    def test_len_field_mismatch(self):
        data = bytearray(encode_frame(Keepalive()))
        data[4] = 5  # LEN says 5, frame carries 0
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(data))
        assert exc_info.value.code == "malformed_frame"

    def test_oversized_len(self):
        body = struct.pack(">BBH", 0x10, 0x00, MAX_PAYLOAD + 1)
        data = b"\xaa" + body + b"\x00" * (MAX_PAYLOAD + 1) + b"\x00\x00"
        with pytest.raises(FrameError) as exc_info:
            decode_frame(data)
        assert exc_info.value.code == "malformed_frame"

    def test_bad_crc(self):
        data = bytearray(encode_frame(Keepalive()))
        data[-1] ^= 0xFF
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(data))
        assert exc_info.value.code == "bad_crc"

    def test_unknown_command(self):
        body = struct.pack(">BBH", 0x55, 0x00, 0)
        data = b"\xaa" + body + crc16(body).to_bytes(2, "big")
        with pytest.raises(FrameError) as exc_info:
            decode_frame(data)
        assert exc_info.value.code == "unsupported"

    def test_wrong_payload_length_for_command(self):
        body = struct.pack(">BBH", 0x10, 0x00, 3) + b"abc"
        data = b"\xaa" + body + crc16(body).to_bytes(2, "big")
        with pytest.raises(FrameError) as exc_info:
            decode_frame(data)
        assert exc_info.value.code == "malformed_frame"

    def test_unknown_error_code_byte(self):
        payload = bytes([0xEE]) + b"boom"
        body = struct.pack(">BBH", 0x7F, 0x80, len(payload)) + payload
        data = b"\xaa" + body + crc16(body).to_bytes(2, "big")
        with pytest.raises(FrameError) as exc_info:
            decode_frame(data)
        assert exc_info.value.code == "malformed_frame"

    def test_start_inventory_bad_strength(self):
        # Framing and CRC valid; the semantic decode must refuse
        # strength 0 for a QCD detector.
        good = StartInventory(
            reader_id=0,
            protocol="fsa",
            scheme="qcd-1",
            frame_size=4,
            n_tags=1,
            seed=0,
        )
        payload = bytearray(good.payload())
        payload[3] = 0  # strength byte
        body = struct.pack(">BBH", 0x02, 0x00, len(payload)) + bytes(payload)
        data = b"\xaa" + body + crc16(body).to_bytes(2, "big")
        with pytest.raises(FrameError) as exc_info:
            decode_frame(data)
        assert exc_info.value.code == "bad_param"

    def test_frame_error_requires_known_code(self):
        with pytest.raises(ValueError):
            FrameError("nonsense", "no such code")


class TestReassembler:
    def test_many_frames_one_feed(self):
        frames = [Keepalive(), StopInventory(reader_id=1), KeepaliveAck()]
        blob = b"".join(encode_frame(f) for f in frames)
        out = list(FrameReassembler().feed(blob))
        assert out == frames

    def test_garbage_between_frames(self):
        re = FrameReassembler()
        blob = (
            b"\x00\x01\x02"
            + encode_frame(Keepalive())
            + b"\xde\xad\xbe\xef"
            + encode_frame(KeepaliveAck())
        )
        out = [f for f in re.feed(blob) if not isinstance(f, FrameError)]
        assert out == [Keepalive(), KeepaliveAck()]
        assert re.garbage_bytes >= 3

    def test_bad_crc_then_recovery(self):
        corrupted = bytearray(encode_frame(Keepalive()))
        corrupted[-1] ^= 0x01
        re = FrameReassembler()
        out = list(re.feed(bytes(corrupted) + encode_frame(KeepaliveAck())))
        errors = [f for f in out if isinstance(f, FrameError)]
        frames = [f for f in out if not isinstance(f, FrameError)]
        assert errors and errors[0].code == "bad_crc"
        assert frames == [KeepaliveAck()]
        assert re.frames_bad >= 1 and re.frames_ok == 1

    def test_torn_frame_completes_across_feeds(self):
        data = encode_frame(StopInventory(reader_id=3))
        re = FrameReassembler()
        assert list(re.feed(data[:4])) == []
        assert re.pending == 4
        assert list(re.feed(data[4:])) == [StopInventory(reader_id=3)]
        assert re.pending == 0

    def test_finish_flags_truncated_tail(self):
        re = FrameReassembler()
        assert list(re.feed(encode_frame(Keepalive())[:5])) == []
        err = re.finish()
        assert isinstance(err, FrameError)
        assert err.code == "malformed_frame"
        assert re.pending == 0

    def test_finish_clean_stream_is_none(self):
        re = FrameReassembler()
        list(re.feed(encode_frame(Keepalive())))
        assert re.finish() is None

    def test_oversized_len_resyncs(self):
        body = struct.pack(">BBH", 0x10, 0x00, MAX_PAYLOAD + 100)
        blob = b"\xaa" + body + encode_frame(Keepalive())
        out = list(FrameReassembler().feed(blob))
        errors = [f for f in out if isinstance(f, FrameError)]
        frames = [f for f in out if not isinstance(f, FrameError)]
        assert errors
        assert Keepalive() in frames

    def test_counters_accumulate(self):
        re = FrameReassembler()
        list(re.feed(encode_frame(Keepalive())))
        list(re.feed(b"\x01\x02"))
        list(re.feed(encode_frame(KeepaliveAck())))
        assert re.frames_ok == 2
        assert re.garbage_bytes == 2
