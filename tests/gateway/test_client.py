"""Client-side behavior: frame plumbing, typed errors, backoff policy,
and the ``python -m repro.gateway.client`` CLI."""

from __future__ import annotations

import csv
import json
import socket
import threading

import pytest

from repro.gateway import codec
from repro.gateway.client import (
    GatewayBusy,
    GatewayClosed,
    GatewayRefused,
    InventorySummary,
    ReconnectPolicy,
    _refusal,
    main,
)


class ScriptedServer:
    """A one-connection fake gateway: accept, run ``script(conn)``."""

    def __init__(self, script) -> None:
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.port = self._listener.getsockname()[1]
        self.received = bytearray()
        self._thread = threading.Thread(
            target=self._run, args=(script,), daemon=True
        )
        self._thread.start()

    def _run(self, script) -> None:
        conn, _ = self._listener.accept()
        try:
            script(conn, self)
        finally:
            conn.close()
            self._listener.close()

    def join(self) -> None:
        self._thread.join(10)
        assert not self._thread.is_alive()


@pytest.fixture
def scripted():
    servers = []

    def factory(script) -> ScriptedServer:
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.join()


class TestReconnectPolicy:
    def test_delays_grow_and_cap(self):
        policy = ReconnectPolicy(
            attempts=6, backoff_s=0.5, multiplier=2.0, max_backoff_s=2.0
        )
        assert list(policy.delays()) == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0]

    def test_attempts_bound_the_sequence(self):
        assert len(list(ReconnectPolicy(attempts=3).delays())) == 3


class TestErrorTypes:
    def test_busy_and_draining_are_retryable(self):
        for code in ("busy", "draining"):
            exc = _refusal(codec.ErrorFrame(code=code, message="x"))
            assert isinstance(exc, GatewayBusy)

    def test_other_codes_are_plain_refusals(self):
        exc = _refusal(codec.ErrorFrame(code="bad_param", message="x"))
        assert isinstance(exc, GatewayRefused)
        assert not isinstance(exc, GatewayBusy)
        assert exc.code == "bad_param"

    def test_summary_tag_ids_deduplicate(self):
        summary = InventorySummary()
        for tag_id in (1, 2, 1):
            summary.reports.append(
                codec.TagReport(
                    reader_id=0,
                    session=1,
                    slot=0,
                    frame=0,
                    tag_id=tag_id,
                    airtime=0.0,
                )
            )
        assert summary.tag_ids == {1, 2}


class TestTransportErrors:
    def test_connect_refused_raises_gateway_closed(self):
        # Grab an ephemeral port and close it again: nothing listens.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(GatewayClosed):
            from repro.gateway.client import GatewayClient

            GatewayClient("127.0.0.1", port, timeout_s=1.0).connect()

    def test_silent_server_times_out(self, scripted):
        def script(conn, srv):
            conn.recv(4096)  # the client's KEEPALIVE
            conn.recv(4096)  # hold the connection open, never reply

        server = scripted(script)
        from repro.gateway.client import GatewayClient

        client = GatewayClient("127.0.0.1", server.port, timeout_s=0.3)
        with pytest.raises(GatewayClosed, match="timed out"):
            with client:
                client.ping()

    def test_garbage_stream_is_gateway_closed(self, scripted):
        def script(conn, srv):
            conn.recv(4096)
            # An undecodable but *complete* frame: the client treats a
            # malformed gateway as a broken transport.
            conn.sendall(b"\xaa\x10\x80\x00\x00\xff\xff")

        server = scripted(script)
        from repro.gateway.client import GatewayClient

        client = GatewayClient("127.0.0.1", server.port, timeout_s=5.0)
        with pytest.raises(GatewayClosed, match="undecodable"):
            with client:
                client.ping()


class TestFramePlumbing:
    def test_one_recv_many_frames_drains_pending_first(self, scripted):
        """Two frames in one TCP segment: the second must surface even
        if the socket never delivers another byte."""

        def script(conn, srv):
            conn.recv(4096)  # the client's KEEPALIVE
            conn.sendall(
                codec.encode_frame(codec.KeepaliveAck())
                + codec.encode_frame(codec.InventoryStarted(reader_id=0, session=9))
            )
            conn.recv(4096)  # park until the client closes

        server = scripted(script)
        from repro.gateway.client import GatewayClient

        with GatewayClient("127.0.0.1", server.port, timeout_s=5.0) as client:
            client.ping()
            # Already buffered client-side; no further socket traffic.
            assert client.recv_frame() == codec.InventoryStarted(
                reader_id=0, session=9
            )

    def test_client_answers_gateway_keepalives(self, scripted):
        """A gateway-initiated KEEPALIVE mid-stream is acked and skipped."""

        def script(conn, srv):
            conn.recv(4096)  # the client's GET_CAPABILITIES
            conn.sendall(codec.encode_frame(codec.Keepalive()))
            srv.received.extend(conn.recv(4096))  # expect the ack
            conn.sendall(
                codec.encode_frame(
                    codec.Capabilities(
                        version=1,
                        n_readers=1,
                        max_tags=10,
                        max_frame_size=16,
                    )
                )
            )

        server = scripted(script)
        from repro.gateway.client import GatewayClient

        with GatewayClient("127.0.0.1", server.port, timeout_s=5.0) as client:
            caps = client.capabilities()
        assert caps.n_readers == 1
        server.join()
        assert bytes(server.received) == codec.encode_frame(
            codec.KeepaliveAck()
        )


class TestRunInventoryRetries:
    def test_budget_exhaustion_propagates(self):
        """A gateway that refuses every connection exhausts the retry
        budget (one sleep per attempt) and raises."""
        from repro.gateway.client import GatewayClient

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = GatewayClient(
            "127.0.0.1",
            port,
            timeout_s=1.0,
            reconnect=ReconnectPolicy(attempts=2, backoff_s=0.01),
        )
        sleeps: list[float] = []
        with pytest.raises(GatewayClosed):
            client.run_inventory(
                0, "fsa", "crc", 16, 10, 1, sleep=sleeps.append
            )
        assert len(sleeps) == 2  # the whole budget was spent


class TestCli:
    def test_cli_records_reports(self, gateway, tmp_path, capsys):
        csv_path = tmp_path / "reports.csv"
        nd_path = tmp_path / "reports.ndjson"
        rc = main(
            [
                "--port",
                str(gateway.port),
                "--reader",
                "1",
                "--protocol",
                "fsa",
                "--scheme",
                "qcd-8",
                "--frame-size",
                "32",
                "--n-tags",
                "40",
                "--seed",
                "7",
                "--csv",
                str(csv_path),
                "--ndjson",
                str(nd_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gateway v1:" in out
        assert "fsa/qcd-8" in out
        rows = list(csv.DictReader(csv_path.open()))
        docs = [
            json.loads(line) for line in nd_path.read_text().splitlines()
        ]
        assert len(rows) == len(docs) > 0
        assert {int(r["tag_id"]) for r in rows} == {
            d["tag_id"] for d in docs
        }

    def test_cli_reports_gateway_errors(self, tmp_path, capsys):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["--port", str(port), "--timeout", "1"])
        assert rc == 1
        assert "gateway error" in capsys.readouterr().err
