"""Shared fixtures for the gateway suite.

Mirrors ``tests/serve/conftest.py``: the gateway enables process-global
observability on start, so every test begins and ends clean, and the
in-process app fixture runs the asyncio stack on a background thread
with an ephemeral port while the blocking :class:`GatewayClient` drives
it from the test thread -- exactly how real clients hit the wire.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import obs
from repro.gateway.client import GatewayClient
from repro.gateway.gateway import GatewayApp, GatewayConfig


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class GatewayHandle:
    """A running GatewayApp on its own event-loop thread."""

    def __init__(self, config: GatewayConfig) -> None:
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.app: GatewayApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("gateway did not start within 20s")
        if self._failure is not None:
            raise self._failure

    def _run(self, config: GatewayConfig) -> None:
        async def amain() -> None:
            try:
                app = GatewayApp(config)
                await app.start()
                self.app = app
                self.loop = asyncio.get_running_loop()
                self.port = app.port
            except BaseException as exc:  # surface startup failures
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await app.wait_closed()

        asyncio.run(amain())

    def client(self, **kwargs) -> GatewayClient:
        kwargs.setdefault("timeout_s", 20.0)
        return GatewayClient("127.0.0.1", self.port, **kwargs)

    def call_soon(self, fn, *args) -> None:
        assert self.loop is not None
        self.loop.call_soon_threadsafe(fn, *args)

    def drop_connections(self) -> None:
        assert self.app is not None
        self.call_soon(self.app.drop_connections)

    def shutdown(self, timeout: float = 30.0) -> None:
        if self.app is not None and self.loop is not None:
            if not self._thread.is_alive():
                return
            self.loop.call_soon_threadsafe(self.app.begin_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "gateway thread failed to drain"


@pytest.fixture
def make_gateway():
    """Factory fixture: start gateways with custom configs; all drained
    on exit."""
    handles: list[GatewayHandle] = []

    def factory(**overrides) -> GatewayHandle:
        overrides.setdefault("readers", 2)
        overrides.setdefault("drain_grace_s", 10.0)
        config = GatewayConfig(port=0, **overrides)
        handle = GatewayHandle(config)
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.shutdown()


@pytest.fixture
def gateway(make_gateway) -> GatewayHandle:
    """A default two-reader gateway."""
    return make_gateway()
