"""End-to-end gateway tests: wire-vs-direct identity, refusals, stop,
fault injection, drain, metrics, and live-socket fuzz.

The headline acceptance property: an inventory streamed over the binary
wire is *field-identical* to the same spec run directly through
:class:`repro.sim.reader.Reader` -- same identified-tag set, for FSA and
DFSA under both QCD and CRC-CD detection.
"""

from __future__ import annotations

import socket
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gateway import codec
from repro.gateway.client import (
    GatewayBusy,
    GatewayClosed,
    GatewayRefused,
)
from repro.gateway.gateway import MAX_CONSECUTIVE_ERRORS
from repro.gateway.readers import run_spec
from repro.obs.state import STATE
from repro.verify.strategies import malformed_binary_frames


class TestCapabilities:
    def test_capabilities_describe_the_fleet(self, gateway):
        with gateway.client() as client:
            caps = client.capabilities()
        assert caps.version == 1
        assert caps.n_readers == 2
        assert caps.protocols == ("fsa", "dfsa")
        assert caps.detectors == ("crc", "qcd")
        assert caps.max_qcd_strength == 64

    def test_ping(self, gateway):
        with gateway.client() as client:
            client.ping()


class TestWireIdentity:
    """Same spec over the wire and run directly => identical results."""

    @pytest.mark.parametrize("protocol", ["fsa", "dfsa"])
    @pytest.mark.parametrize("scheme", ["qcd-16", "crc"])
    def test_identified_set_matches_direct_run(
        self, gateway, protocol, scheme
    ):
        spec = codec.StartInventory(
            reader_id=0,
            protocol=protocol,
            scheme=scheme,
            frame_size=64,
            n_tags=200,
            seed=42,
        )
        with gateway.client() as client:
            summary = client.run_inventory(
                0, protocol, scheme, 64, 200, 42
            )
        direct = run_spec(spec)
        assert summary.tag_ids == set(direct.identified_ids)
        assert summary.complete is not None
        assert summary.complete.identified == len(direct.identified_ids)
        assert summary.complete.lost == len(direct.lost_ids)
        assert summary.complete.slots == len(direct.trace)
        assert summary.complete.frames == direct.stats.frames
        assert summary.complete.airtime == direct.stats.total_time
        assert not summary.complete.stopped

    def test_report_fields_match_trace(self, gateway):
        spec = codec.StartInventory(
            reader_id=1,
            protocol="fsa",
            scheme="qcd-8",
            frame_size=32,
            n_tags=40,
            seed=7,
        )
        with gateway.client() as client:
            summary = client.run_inventory(1, "fsa", "qcd-8", 32, 40, 7)
        direct = run_spec(spec)
        by_slot = {
            r.index: r
            for r in direct.trace
            if r.identified_tag is not None
        }
        assert len(summary.reports) == len(by_slot)
        for report in summary.reports:
            record = by_slot[report.slot]
            assert report.tag_id == record.identified_tag
            assert report.frame == record.frame
            assert report.airtime == record.end_time


class TestRefusals:
    def test_unknown_reader_is_bad_param(self, gateway):
        with gateway.client() as client:
            with pytest.raises(GatewayRefused) as exc_info:
                client.start_inventory(9, "fsa", "crc", 16, 10, 1)
        assert exc_info.value.code == "bad_param"

    def test_zero_tags_is_bad_param(self, gateway):
        with gateway.client() as client:
            with pytest.raises(GatewayRefused) as exc_info:
                client.start_inventory(0, "fsa", "crc", 16, 0, 1)
        assert exc_info.value.code == "bad_param"

    def test_busy_reader_refuses_second_session(self, gateway):
        with gateway.client() as a, gateway.client() as b:
            a.start_inventory(0, "dfsa", "crc", 16, 2000, 5)
            with pytest.raises(GatewayBusy):
                b.start_inventory(0, "fsa", "crc", 16, 10, 1)
            # The *other* reader stays available.
            b.start_inventory(1, "fsa", "qcd-4", 16, 10, 1)
            for _ in b.iter_reports():
                pass

    def test_server_direction_frame_is_unsupported(self, gateway):
        with gateway.client() as client:
            client.send_frame(
                codec.TagReport(
                    reader_id=0,
                    session=1,
                    slot=0,
                    frame=0,
                    tag_id=1,
                    airtime=0.0,
                )
            )
            frame = client.recv_frame()
        assert isinstance(frame, codec.ErrorFrame)
        assert frame.code == "unsupported"

    def test_malformed_frame_gets_error_and_connection_survives(
        self, gateway
    ):
        with gateway.client() as client:
            client.ping()
            assert client._sock is not None
            client._sock.sendall(b"\xaa\x99\x00\x00\x05hello\xde\xad")
            frame = client.recv_frame()
            assert isinstance(frame, codec.ErrorFrame)
            # Same connection still serves real traffic.
            client.ping()

    def test_error_budget_closes_abusive_connection(self, gateway):
        bad = b"\xaa\x99\x00\x00\x05hello\xde\xad"
        with gateway.client() as client:
            client.ping()
            assert client._sock is not None
            client._sock.sendall(bad * (MAX_CONSECUTIVE_ERRORS + 8))
            with pytest.raises(GatewayClosed):
                while True:
                    frame = client.recv_frame()
                    assert isinstance(frame, codec.ErrorFrame)


class TestStop:
    def test_stop_mid_inventory(self, gateway):
        with gateway.client() as client:
            client.start_inventory(0, "dfsa", "crc", 16, 5000, 11)
            # The STOP lands while the simulation is still computing in
            # its worker thread, so streaming is cut short.
            client.stop(0)
            reports = list(client.iter_reports())
            complete = client.last_complete
            assert complete is not None
            assert complete.stopped
            assert len(reports) < complete.identified
            # The reader is free again immediately.
            summary = client.run_inventory(0, "fsa", "qcd-4", 16, 10, 3)
            assert summary.complete is not None

    def test_stop_idle_reader_acks_session_zero(self, gateway):
        with gateway.client() as client:
            client.send_frame(codec.StopInventory(reader_id=0))
            frame = client.recv_frame()
        assert frame == codec.InventoryStopped(reader_id=0, session=0)


class TestFaultInjection:
    def test_reconnect_resumes_mid_inventory(self, make_gateway):
        """Kill every connection mid-stream: the client reconnects,
        reruns the deterministic spec, dedupes, and the final set is
        field-identical to a direct run."""
        gateway = make_gateway(outbox_frames=8)
        spec = codec.StartInventory(
            reader_id=1,
            protocol="dfsa",
            scheme="crc",
            frame_size=16,
            n_tags=500,
            seed=7,
        )
        state = {"killed": False}

        def on_report(report):
            if not state["killed"]:
                state["killed"] = True
                gateway.drop_connections()
                time.sleep(0.3)  # let the RST land mid-stream

        with gateway.client() as client:
            summary = client.run_inventory(
                1, "dfsa", "crc", 16, 500, 7, on_report=on_report
            )
        direct = run_spec(spec)
        assert state["killed"]
        assert summary.reconnects >= 1
        assert summary.tag_ids == set(direct.identified_ids)
        assert len(summary.reports) == len(direct.identified_ids)

    def test_client_disconnect_does_not_kill_gateway(self, gateway):
        """Slam the connection mid-inventory; the gateway must keep
        serving and free the reader."""
        with gateway.client() as client:
            client.start_inventory(0, "dfsa", "crc", 16, 2000, 13)
            # Read a couple of reports, then vanish without a word.
            client.recv_frame()
            client.close()
        deadline = time.monotonic() + 10
        with gateway.client() as client:
            while True:
                try:
                    client.start_inventory(0, "fsa", "crc", 16, 5, 1)
                    break
                except GatewayBusy:
                    assert time.monotonic() < deadline, "reader never freed"
                    time.sleep(0.05)
            for _ in client.iter_reports():
                pass


class TestDrain:
    def test_draining_refuses_new_inventories(self, make_gateway):
        gateway = make_gateway()
        with gateway.client() as client:
            client.ping()
            assert gateway.app is not None
            gateway.call_soon(gateway.app.begin_drain)
            time.sleep(0.2)
            with pytest.raises((GatewayBusy, GatewayClosed)) as exc_info:
                client.start_inventory(0, "fsa", "crc", 16, 10, 1)
            if isinstance(exc_info.value, GatewayBusy):
                assert exc_info.value.code == "draining"
        gateway.shutdown()

    def test_drain_writes_metrics_snapshot(self, make_gateway, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        gateway = make_gateway(metrics_out=str(out))
        spec = codec.StartInventory(
            reader_id=0,
            protocol="fsa",
            scheme="qcd-16",
            frame_size=16,
            n_tags=20,
            seed=1,
        )
        with gateway.client() as client:
            client.run_inventory(0, "fsa", "qcd-16", 16, 20, 1)
        gateway.shutdown()
        expected = len(run_spec(spec).identified_ids)
        assert expected > 0
        doc = json.loads(out.read_text())
        crc = doc["repro_gateway_crc_failures_total"]["samples"]
        assert crc == [{"labels": {}, "value": 0}]
        out_counts = {
            s["labels"]["cmd"]: s["value"]
            for s in doc["repro_gateway_frames_out_total"]["samples"]
        }
        assert out_counts["TagReport"] == expected
        assert out_counts["InventoryComplete"] == 1


class TestMetrics:
    def test_gateway_metrics_flow(self, gateway):
        spec = codec.StartInventory(
            reader_id=0,
            protocol="fsa",
            scheme="qcd-16",
            frame_size=16,
            n_tags=20,
            seed=1,
        )
        with gateway.client() as client:
            client.run_inventory(0, "fsa", "qcd-16", 16, 20, 1)
        expected = len(run_spec(spec).identified_ids)
        registry = STATE.registry.to_dict()
        in_counts = {
            s["labels"]["cmd"]: s["value"]
            for s in registry["repro_gateway_frames_in_total"]["samples"]
        }
        assert in_counts["StartInventory"] == 1
        inventories = registry["repro_gateway_inventories_total"]["samples"]
        assert inventories == [
            {
                "labels": {
                    "protocol": "fsa",
                    "detector": "qcd",
                    "outcome": "done",
                },
                "value": 1,
            }
        ]
        report_hist = registry["repro_gateway_report_seconds"]["samples"]
        assert report_hist[0]["count"] == expected
        # The reader's own instrumentation ran under the same registry.
        assert registry["repro_slots_total"]["samples"]

    def test_crc_failure_is_counted(self, gateway):
        data = bytearray(codec.encode_frame(codec.Keepalive()))
        data[-1] ^= 0x01
        with gateway.client() as client:
            client.ping()
            assert client._sock is not None
            client._sock.sendall(bytes(data))
            frame = client.recv_frame()
            assert isinstance(frame, codec.ErrorFrame)
            assert frame.code == "bad_crc"
        samples = STATE.registry.to_dict()[
            "repro_gateway_crc_failures_total"
        ]["samples"]
        assert samples == [{"labels": {}, "value": 1}]


class TestLiveFuzz:
    """The acceptance fuzz property against a *live* gateway: malformed
    bytes produce typed ERROR frames or a clean close -- the gateway
    never crashes and never emits a frame with an invalid CRC."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cases=st.lists(malformed_binary_frames(), min_size=1, max_size=4))
    def test_malformed_blobs_never_crash_the_gateway(self, gateway, cases):
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=10
        )
        try:
            for _rule, blob in cases:
                sock.sendall(blob)
            # A valid frame after the noise: if the gateway still
            # answers it, the connection survived; if the error budget
            # closed us, the close must be clean (EOF/RST, no junk).
            sock.sendall(codec.encode_frame(codec.Keepalive()))
            sock.shutdown(socket.SHUT_WR)
            re = codec.FrameReassembler()
            saw_ack = False
            while True:
                try:
                    data = sock.recv(65536)
                except ConnectionError:
                    break  # clean-close path
                if not data:
                    break
                for item in re.feed(data):
                    # Everything the gateway emits decodes: no
                    # malformed bytes, no bad CRCs.
                    assert not isinstance(item, codec.FrameError)
                    assert isinstance(
                        item, (codec.ErrorFrame, codec.KeepaliveAck)
                    )
                    if isinstance(item, codec.KeepaliveAck):
                        saw_ack = True
            assert re.finish() is None
            assert re.frames_bad == 0
        finally:
            sock.close()
        # And the gateway is still alive for the next client.
        with gateway.client() as client:
            client.ping()
