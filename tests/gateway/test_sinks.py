"""Report sinks: CSV and NDJSON rows must carry identical information
and survive append/reopen cycles."""

from __future__ import annotations

import csv
import json

from repro.gateway.codec import TagReport
from repro.gateway.sinks import CsvSink, FIELDS, NdjsonSink, fanout

REPORT = TagReport(
    reader_id=1,
    session=3,
    slot=20,
    frame=2,
    tag_id=0x2882854FB05FE3DF,
    airtime=736.0,
)
OTHER = TagReport(
    reader_id=0,
    session=1,
    slot=0,
    frame=1,
    tag_id=7,
    airtime=64.0,
)


class TestCsvSink:
    def test_header_then_rows(self, tmp_path):
        path = tmp_path / "reports.csv"
        with CsvSink(path) as sink:
            sink.write(REPORT)
            sink.write(OTHER)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 2
        assert tuple(rows[0]) == FIELDS
        assert rows[0]["tag_id"] == str(REPORT.tag_id)
        assert rows[0]["tag_id_hex"] == "2882854fb05fe3df"
        assert float(rows[0]["airtime"]) == REPORT.airtime

    def test_append_does_not_repeat_header(self, tmp_path):
        path = tmp_path / "reports.csv"
        with CsvSink(path) as sink:
            sink.write(REPORT)
        with CsvSink(path) as sink:
            sink.write(OTHER)
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # one header + two rows
        assert lines[0] == ",".join(FIELDS)

    def test_hex_is_zero_padded(self, tmp_path):
        path = tmp_path / "reports.csv"
        with CsvSink(path) as sink:
            sink.write(OTHER)
        row = next(csv.DictReader(path.open()))
        assert row["tag_id_hex"] == "0000000000000007"


class TestNdjsonSink:
    def test_lines_parse_back(self, tmp_path):
        path = tmp_path / "reports.ndjson"
        with NdjsonSink(path) as sink:
            sink.write(REPORT)
            sink.write(OTHER)
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(docs) == 2
        assert tuple(docs[0]) == FIELDS
        assert docs[0]["tag_id"] == REPORT.tag_id
        assert docs[0]["airtime"] == REPORT.airtime
        assert docs[1]["tag_id_hex"] == "0000000000000007"

    def test_csv_and_ndjson_carry_identical_information(self, tmp_path):
        csv_path = tmp_path / "reports.csv"
        nd_path = tmp_path / "reports.ndjson"
        with CsvSink(csv_path) as c, NdjsonSink(nd_path) as n:
            c.write(REPORT)
            n.write(REPORT)
        csv_row = next(csv.DictReader(csv_path.open()))
        nd_row = json.loads(nd_path.read_text())
        assert {k: str(v) for k, v in nd_row.items()} == csv_row


class TestFanout:
    def test_writes_every_sink(self, tmp_path):
        a = CsvSink(tmp_path / "a.csv")
        b = NdjsonSink(tmp_path / "b.ndjson")
        on_report = fanout([a, b])
        on_report(REPORT)
        a.close()
        b.close()
        assert len((tmp_path / "a.csv").read_text().splitlines()) == 2
        assert len((tmp_path / "b.ndjson").read_text().splitlines()) == 1

    def test_empty_fanout_is_a_noop(self):
        fanout([])(REPORT)
