"""SGTIN-96 EPC encoding tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector
from repro.tags.epc import PARTITION_TABLE, SGTIN96_HEADER, Sgtin96


def sgtin_strategy():
    return st.sampled_from(sorted(PARTITION_TABLE)).flatmap(
        lambda part: st.tuples(
            st.integers(0, 7),
            st.just(part),
            st.integers(0, (1 << PARTITION_TABLE[part][0]) - 1),
            st.integers(0, (1 << PARTITION_TABLE[part][1]) - 1),
            st.integers(0, (1 << 38) - 1),
        ).map(lambda t: Sgtin96(*t))
    )


class TestEncoding:
    def test_encode_is_96_bits_with_header(self):
        epc = Sgtin96(1, 5, 12345, 678, 42).encode()
        assert epc.length == 96
        assert epc[:8].to_int() == SGTIN96_HEADER

    def test_roundtrip_example(self):
        orig = Sgtin96(
            filter_value=1,
            partition=5,
            company_prefix=0x123456,
            item_reference=0xBEEF,
            serial=999_999,
        )
        assert Sgtin96.decode(orig.encode()) == orig

    @given(sgtin_strategy())
    def test_roundtrip_property(self, epc):
        assert Sgtin96.decode(epc.encode()) == epc

    def test_partition_bits_sum_to_44(self):
        for company_bits, item_bits in PARTITION_TABLE.values():
            assert company_bits + item_bits == 44


class TestValidation:
    def test_bad_partition(self):
        with pytest.raises(ValueError, match="partition"):
            Sgtin96(1, 7, 0, 0, 0)

    def test_company_overflow(self):
        with pytest.raises(ValueError, match="company_prefix"):
            Sgtin96(1, 6, 1 << 20, 0, 0)

    def test_item_overflow(self):
        with pytest.raises(ValueError, match="item_reference"):
            Sgtin96(1, 0, 0, 1 << 4, 0)

    def test_serial_overflow(self):
        with pytest.raises(ValueError, match="serial"):
            Sgtin96(1, 5, 0, 0, 1 << 38)

    def test_filter_overflow(self):
        with pytest.raises(ValueError, match="filter"):
            Sgtin96(8, 5, 0, 0, 0)

    def test_decode_wrong_length(self):
        with pytest.raises(ValueError, match="96 bits"):
            Sgtin96.decode(BitVector(0, 64))

    def test_decode_wrong_header(self):
        with pytest.raises(ValueError, match="header"):
            Sgtin96.decode(BitVector.zeros(96))

    def test_decode_bad_partition_field(self):
        # header 0x30, then filter 0, partition 7 (invalid).
        raw = BitVector(SGTIN96_HEADER, 8) + BitVector(0, 3) + BitVector(7, 3)
        raw = raw + BitVector.zeros(96 - raw.length)
        with pytest.raises(ValueError, match="invalid partition"):
            Sgtin96.decode(raw)


class TestRandom:
    def test_random_valid_and_reproducible(self, rng):
        a = Sgtin96.random(rng)
        assert Sgtin96.decode(a.encode()) == a

    def test_pinned_company(self, rng):
        epc = Sgtin96.random(rng, partition=6, company_prefix=0xABCDE)
        assert epc.company_prefix == 0xABCDE
        assert epc.company_bits == 20
        assert epc.item_bits == 24
