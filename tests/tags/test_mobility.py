"""Mobility schedule tests."""

from __future__ import annotations

import pytest

from repro.bits.rng import make_rng
from repro.tags.mobility import MobilityEvent, MobilitySchedule, poisson_arrivals
from repro.tags.population import TagPopulation


def ev(time, kind, tag, seq=0):
    return MobilityEvent(time=time, seq=seq, kind=kind, tag=tag)


class TestEvents:
    def test_invalid_kind(self, make_population):
        tag = make_population(1)[0]
        with pytest.raises(ValueError, match="kind"):
            ev(1.0, "teleport", tag)

    def test_negative_time(self, make_population):
        tag = make_population(1)[0]
        with pytest.raises(ValueError, match="time"):
            ev(-1.0, "arrive", tag)

    def test_ordering_by_time_then_seq(self, make_population):
        tag = make_population(1)[0]
        a = ev(1.0, "arrive", tag, seq=1)
        b = ev(1.0, "depart", tag, seq=2)
        c = ev(0.5, "arrive", tag, seq=9)
        assert sorted([b, a, c]) == [c, a, b]


class TestSchedule:
    def test_events_until_pops_in_order(self, make_population):
        tags = make_population(3).tags
        sched = MobilitySchedule(
            [ev(3.0, "arrive", tags[0], 0), ev(1.0, "arrive", tags[1], 1),
             ev(2.0, "arrive", tags[2], 2)]
        )
        due = sched.events_until(2.0)
        assert [e.time for e in due] == [1.0, 2.0]
        assert len(sched) == 1
        assert sched.peek_next_time() == 3.0

    def test_events_until_empty(self):
        sched = MobilitySchedule()
        assert sched.events_until(100.0) == []
        assert sched.peek_next_time() is None

    def test_add_keeps_order(self, make_population):
        tag = make_population(1)[0]
        sched = MobilitySchedule([ev(5.0, "arrive", tag, 0)])
        sched.add(ev(1.0, "arrive", tag, 1))
        assert sched.peek_next_time() == 1.0


class TestPoissonArrivals:
    def test_structure(self):
        pop = TagPopulation(20, rng=make_rng(9))
        sched = poisson_arrivals(pop.tags, rate=1.0, dwell_mean=5.0, rng=make_rng(1))
        events = list(sched)
        assert len(events) == 40  # one arrive + one depart per tag
        arrives = {id(e.tag): e.time for e in events if e.kind == "arrive"}
        departs = {id(e.tag): e.time for e in events if e.kind == "depart"}
        for key in arrives:
            assert departs[key] > arrives[key]

    def test_times_sorted(self):
        pop = TagPopulation(10, rng=make_rng(9))
        sched = poisson_arrivals(pop.tags, 2.0, 1.0, make_rng(2))
        times = [e.time for e in sched]
        assert times == sorted(times)

    def test_invalid_params(self):
        pop = TagPopulation(1, rng=make_rng(9))
        with pytest.raises(ValueError):
            poisson_arrivals(pop.tags, 0.0, 1.0, make_rng(0))
        with pytest.raises(ValueError):
            poisson_arrivals(pop.tags, 1.0, -1.0, make_rng(0))

    def test_reproducible(self):
        pop = TagPopulation(5, rng=make_rng(9))
        t1 = [e.time for e in poisson_arrivals(pop.tags, 1.0, 1.0, make_rng(3))]
        t2 = [e.time for e in poisson_arrivals(pop.tags, 1.0, 1.0, make_rng(3))]
        assert t1 == t2
