"""Tag state-machine tests."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.tags.tag import Tag


def make_tag(tag_id=5, id_bits=8):
    return Tag(tag_id=tag_id, id_bits=id_bits, rng=make_rng(0))


class TestConstruction:
    def test_valid(self):
        tag = make_tag()
        assert tag.tag_id == 5
        assert not tag.identified

    def test_id_overflow(self):
        with pytest.raises(ValueError, match="does not fit"):
            Tag(tag_id=256, id_bits=8, rng=make_rng(0))

    def test_negative_id(self):
        with pytest.raises(ValueError):
            Tag(tag_id=-1, id_bits=8, rng=make_rng(0))

    def test_id_vector_cached(self):
        tag = make_tag(0b1010, 4)
        assert tag.id_vector == BitVector(0b1010, 4)
        assert tag.id_vector is tag.id_vector


class TestLifecycle:
    def test_mark_identified(self):
        tag = make_tag()
        tag.mark_identified(123.0)
        assert tag.identified
        assert tag.identified_at == 123.0

    def test_double_identification_rejected(self):
        tag = make_tag()
        tag.mark_identified(1.0)
        with pytest.raises(RuntimeError, match="twice"):
            tag.mark_identified(2.0)

    def test_reset(self):
        tag = make_tag()
        tag.counter = 3
        tag.slot_choice = 7
        tag.mark_identified(9.0)
        tag.lost = True
        tag.reset_protocol_state()
        assert tag.counter == 0
        assert tag.slot_choice == -1
        assert not tag.identified
        assert tag.identified_at is None
        assert not tag.lost


class TestPrefixMatching:
    def test_matches_own_prefix(self):
        tag = make_tag(0b1010, 4)
        assert tag.responds_to_prefix(BitVector.from_bitstring("10"))
        assert not tag.responds_to_prefix(BitVector.from_bitstring("11"))

    def test_empty_prefix_matches_all(self):
        assert make_tag().responds_to_prefix(BitVector(0, 0))

    def test_full_id_prefix(self):
        tag = make_tag(0b1010, 4)
        assert tag.responds_to_prefix(BitVector.from_bitstring("1010"))

    def test_hashable(self):
        assert len({make_tag(1), make_tag(2)}) == 2
