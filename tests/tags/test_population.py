"""Population generator tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.rng import make_rng
from repro.tags.epc import Sgtin96
from repro.tags.population import TagPopulation


class TestUniqueness:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 300), st.sampled_from([16, 64, 96]))
    def test_ids_unique(self, size, id_bits):
        pop = TagPopulation(size, id_bits=id_bits, rng=make_rng(1))
        assert len(set(pop.ids)) == size

    def test_dense_space(self):
        """More tags than half the ID space exercises the permutation path."""
        pop = TagPopulation(12, id_bits=4, rng=make_rng(2))
        assert len(set(pop.ids)) == 12
        assert all(0 <= i < 16 for i in pop.ids)

    def test_full_space(self):
        pop = TagPopulation(16, id_bits=4, rng=make_rng(2))
        assert sorted(pop.ids) == list(range(16))

    def test_too_many_for_space(self):
        with pytest.raises(ValueError, match="larger than the ID space"):
            TagPopulation(17, id_bits=4, rng=make_rng(0))


class TestLayouts:
    def test_sequential(self):
        pop = TagPopulation(10, id_bits=8, layout="sequential", rng=make_rng(0))
        assert pop.ids == list(range(10))

    def test_sgtin_ids_decode(self):
        pop = TagPopulation(20, id_bits=96, layout="sgtin", rng=make_rng(3))
        for tag in pop:
            Sgtin96.decode(tag.id_vector)  # must not raise

    def test_sgtin_requires_96_bits(self):
        with pytest.raises(ValueError, match="96"):
            TagPopulation(5, id_bits=64, layout="sgtin", rng=make_rng(0))

    def test_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            TagPopulation(5, layout="weird", rng=make_rng(0))

    def test_negative_size(self):
        with pytest.raises(ValueError):
            TagPopulation(-1, rng=make_rng(0))


class TestReproducibility:
    def test_same_seed_same_population(self):
        a = TagPopulation(50, rng=make_rng(42))
        b = TagPopulation(50, rng=make_rng(42))
        assert a.ids == b.ids

    def test_tag_streams_independent(self):
        pop = TagPopulation(2, rng=make_rng(42))
        d0 = pop[0].rng.integers(0, 1 << 20)
        d1 = pop[1].rng.integers(0, 1 << 20)
        assert d0 != d1  # overwhelmingly likely; deterministic given seed


class TestSpatial:
    def test_positions_within_area(self):
        pop = TagPopulation(100, rng=make_rng(1), area=(50.0, 20.0))
        for tag in pop:
            x, y = tag.position
            assert 0 <= x <= 50 and 0 <= y <= 20

    def test_no_area_no_positions(self):
        pop = TagPopulation(5, rng=make_rng(1))
        assert all(t.position is None for t in pop)


class TestHelpers:
    def test_reset_and_queries(self):
        pop = TagPopulation(5, rng=make_rng(1))
        pop[0].mark_identified(1.0)
        assert len(pop.unidentified()) == 4
        assert not pop.all_identified()
        pop.reset()
        assert len(pop.unidentified()) == 5

    def test_len_iter_getitem(self):
        pop = TagPopulation(5, rng=make_rng(1))
        assert len(pop) == 5
        assert len(list(pop)) == 5
        assert pop[0] is pop.tags[0]
