"""Blocker / malicious tag tests (QT starvation and selective privacy)."""

from __future__ import annotations

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.protocols.qt import QueryTree
from repro.security.blocker import BlockerTag, MaliciousTag
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation


def malicious(id_bits=8):
    return MaliciousTag(tag_id=0, id_bits=id_bits, rng=make_rng(66))


def blocker(zone: str, id_bits=8):
    return BlockerTag(
        tag_id=0,
        id_bits=id_bits,
        rng=make_rng(67),
        privacy_prefix=BitVector.from_bitstring(zone),
    )


class TestMaliciousTag:
    def test_responds_to_everything(self):
        m = malicious()
        assert m.responds_to_prefix(BitVector(0, 0))
        assert m.responds_to_prefix(BitVector.from_bitstring("10101010"))

    def test_never_retires(self):
        m = malicious()
        m.mark_identified(5.0)
        assert not m.identified

    def test_starves_query_tree(self):
        """Paper Section II: 'When a malicious tag keeps responding, QT
        fails to identify any tag.'  Every probe that reaches a genuine
        tag also reaches the jammer, so it collides; probes reaching the
        jammer alone read as singles and yield *ghost* identifications of
        garbage, never of a real tag."""
        pop = TagPopulation(10, id_bits=8, rng=make_rng(1))
        tags = list(pop.tags) + [malicious()]
        proto = QueryTree(max_slots=2000)
        result = Reader(QCDDetector(8)).run_inventory(tags, proto)
        # No genuine tag is ever identified (object-level check: reported
        # IDs can be ghost reads of the jammer).
        assert all(not t.identified for t in pop)
        # The jammer does produce ghost reads -- the reader is not merely
        # slow, it is actively deceived.
        assert len(result.identified_ids) > 0


class TestBlockerTag:
    def test_blocks_only_its_zone(self):
        b = blocker("1")
        assert b.responds_to_prefix(BitVector.from_bitstring("1"))
        assert b.responds_to_prefix(BitVector.from_bitstring("10"))
        assert b.responds_to_prefix(BitVector.from_bitstring("1111"))
        assert not b.responds_to_prefix(BitVector.from_bitstring("0"))
        assert not b.responds_to_prefix(BitVector.from_bitstring("01"))

    def test_responds_above_zone(self):
        b = blocker("10")
        assert b.responds_to_prefix(BitVector(0, 0))  # root covers the zone
        assert b.responds_to_prefix(BitVector.from_bitstring("1"))
        assert not b.responds_to_prefix(BitVector.from_bitstring("0"))

    def test_never_retires(self):
        b = blocker("1")
        b.mark_identified(1.0)
        assert not b.identified

    def test_zone_tags_protected_others_readable(self):
        """Juels-Rivest-Szydlo semantics: tags inside the privacy zone stay
        hidden (their probes always collide with the blocker); tags outside
        are identified normally."""
        pop = TagPopulation(30, id_bits=8, rng=make_rng(2))
        tags = list(pop.tags) + [blocker("1")]
        proto = QueryTree(max_slots=2000)
        result = Reader(QCDDetector(8)).run_inventory(tags, proto)
        inside = {t.tag_id for t in pop if t.id_vector.bit(0) == 1}
        outside = {t.tag_id for t in pop if t.id_vector.bit(0) == 0}
        identified = set(result.identified_ids)
        assert identified & inside == set()
        assert outside <= identified

    def test_blocker_inflates_walk_and_forges_reads(self):
        """The blocker's cost to the reader: probes inside the zone that
        would have been idle now read as ghost singles, and probes shared
        with real zone tags collide all the way to full depth -- so the
        walk grows versus the unblocked inventory, and ghost reads appear."""
        pop = TagPopulation(8, id_bits=6, rng=make_rng(3))
        baseline = Reader(QCDDetector(8)).run_inventory(
            list(pop.tags), QueryTree(max_slots=5000)
        )
        pop.reset()
        tags = list(pop.tags) + [blocker("1", id_bits=6)]
        blocked = Reader(QCDDetector(8)).run_inventory(
            tags, QueryTree(max_slots=5000)
        )
        assert len(blocked.trace) > len(baseline.trace)
        n_zone = sum(1 for t in pop if t.id_vector.bit(0) == 1)
        # Every non-zone tag identified; zone tags all hidden.
        assert sum(1 for t in pop if t.identified) == len(pop) - n_zone
