"""Backward-channel protection tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.security.backward import PseudoIdMixer, RandomizedBitEncoder


class TestPseudoIdMixer:
    def test_mix_is_boolean_sum(self):
        tag = BitVector.from_bitstring("0101")
        pseudo = BitVector.from_bitstring("0011")
        assert PseudoIdMixer.mix(tag, pseudo) == BitVector.from_bitstring("0111")

    def test_reader_recovers_zero_mask_positions(self):
        tag = BitVector.from_bitstring("0101")
        pseudo = BitVector.from_bitstring("0011")
        known = PseudoIdMixer.recover_known(PseudoIdMixer.mix(tag, pseudo), pseudo)
        assert known == {0: 0, 1: 1}

    def test_eavesdropper_learns_only_zeros(self):
        tag = BitVector.from_bitstring("0101")
        pseudo = BitVector.from_bitstring("0011")
        leak = PseudoIdMixer.eavesdrop(PseudoIdMixer.mix(tag, pseudo))
        # mixed = 0111: only position 0 is 0.
        assert leak == {0: 0}

    def test_full_recovery_converges(self):
        mixer = PseudoIdMixer(make_rng(5))
        tag = BitVector.from_bitstring("1100101001")
        recovered, rounds = mixer.recover_id(tag)
        assert recovered == tag
        assert 1 <= rounds < 64

    def test_recovery_round_bound(self):
        mixer = PseudoIdMixer(make_rng(5))
        tag = BitVector.ones(8)
        with pytest.raises(RuntimeError):
            # With max_rounds=0 nothing can be learned.
            mixer.recover_id(tag, max_rounds=0)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_recovered_positions_always_correct(self, t, p):
        tag, pseudo = BitVector(t, 8), BitVector(p, 8)
        known = PseudoIdMixer.recover_known(PseudoIdMixer.mix(tag, pseudo), pseudo)
        for k, v in known.items():
            assert tag.bit(k) == v

    @given(st.integers(0, 255))
    def test_eavesdropper_zeros_always_correct(self, t):
        tag = BitVector(t, 8)
        pseudo = BitVector(0b10110100, 8)
        leak = PseudoIdMixer.eavesdrop(PseudoIdMixer.mix(tag, pseudo))
        for k, v in leak.items():
            assert tag.bit(k) == v == 0


class TestRandomizedBitEncoder:
    def test_roundtrip(self):
        enc = RandomizedBitEncoder(expansion=4, rng=make_rng(9))
        tag = BitVector.from_bitstring("10110010")
        encoded = enc.encode(tag)
        assert encoded.length == 32
        assert enc.decode(encoded) == tag

    @given(st.integers(0, 2**16 - 1))
    def test_roundtrip_property(self, value):
        enc = RandomizedBitEncoder(expansion=3, rng=make_rng(11))
        tag = BitVector(value, 16)
        assert enc.decode(enc.encode(tag)) == tag

    def test_encoding_randomized(self):
        """Two encodings of the same ID differ (whp) -- that is the whole
        point: an eavesdropper cannot link replies."""
        enc = RandomizedBitEncoder(expansion=8, rng=make_rng(13))
        tag = BitVector.from_bitstring("1011")
        encodings = {enc.encode(tag).to_int() for _ in range(10)}
        assert len(encodings) > 1

    def test_decode_validates_length(self):
        enc = RandomizedBitEncoder(expansion=4, rng=make_rng(9))
        with pytest.raises(ValueError):
            enc.decode(BitVector(0, 10))

    def test_expansion_validation(self):
        with pytest.raises(ValueError):
            RandomizedBitEncoder(expansion=1, rng=make_rng(0))

    def test_parity_structure(self):
        """Each codeword group carries its ID bit as XOR parity."""
        enc = RandomizedBitEncoder(expansion=5, rng=make_rng(15))
        tag = BitVector.from_bitstring("101")
        encoded = enc.encode(tag)
        for i, bit in enumerate(tag):
            group = encoded[i * 5 : (i + 1) * 5]
            assert group.popcount() % 2 == bit
