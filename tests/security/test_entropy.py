"""Privacy entropy metric tests."""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.security.entropy import bit_leakage, eavesdropper_entropy, posterior_one


class TestBitLeakage:
    def test_fraction(self):
        assert bit_leakage(8, {0: 1, 3: 0}) == pytest.approx(0.25)

    def test_none_known(self):
        assert bit_leakage(8, {}) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_leakage(0, {})
        with pytest.raises(ValueError):
            bit_leakage(4, {4: 1})


class TestPosterior:
    def test_uniform_prior_half_mask(self):
        # P(b=1 | mix=1) = 0.5 / (0.5 + 0.5*0.5) = 2/3.
        assert posterior_one(0.5, 0.5) == pytest.approx(2 / 3)

    def test_mask_always_one_uninformative(self):
        assert posterior_one(0.5, 1.0) == pytest.approx(0.5)

    def test_certain_prior(self):
        assert posterior_one(1.0, 0.5) == 1.0
        assert posterior_one(0.0, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            posterior_one(1.5, 0.5)
        with pytest.raises(ValueError):
            posterior_one(0.5, 0.0)


class TestEntropy:
    def test_nothing_known_full_entropy(self):
        tag = BitVector.zeros(16)
        assert eavesdropper_entropy(tag, {}) == pytest.approx(16.0)

    def test_everything_known_zero_entropy(self):
        tag = BitVector.zeros(4)
        known = {k: 0 for k in range(4)}
        assert eavesdropper_entropy(tag, known) == 0.0

    def test_partial(self):
        tag = BitVector.zeros(8)
        assert eavesdropper_entropy(tag, {0: 0, 1: 0}) == pytest.approx(6.0)

    def test_posterior_reduces_entropy(self):
        """Observing a mixed 1 still leaks a little: the posterior is
        biased toward 1, so per-bit entropy drops below 1."""
        tag = BitVector.zeros(8)
        uniform = eavesdropper_entropy(tag, {})
        skewed = eavesdropper_entropy(tag, {}, p_mask_one=0.5)
        assert skewed < uniform

    def test_pseudo_id_defense_end_to_end(self):
        """The leak from one mixed observation is bounded well below the
        full ID; the entropy metric quantifies the protection."""
        from repro.bits.rng import make_rng
        from repro.security.backward import PseudoIdMixer

        mixer = PseudoIdMixer(make_rng(21))
        tag = BitVector.random(32, make_rng(22).generator)
        pseudo = mixer.draw_pseudo(32)
        leak = PseudoIdMixer.eavesdrop(PseudoIdMixer.mix(tag, pseudo))
        residual = eavesdropper_entropy(tag, leak, p_mask_one=0.5)
        assert residual > 8.0  # plenty of uncertainty left
        assert residual < 32.0  # but some structure did leak
