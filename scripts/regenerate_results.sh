#!/usr/bin/env bash
# Regenerate every checked-in artifact under results/ from scratch.
# Run from the repository root.  Takes a few minutes at 50 rounds.
set -euo pipefail

ROUNDS="${1:-50}"
SEED="${2:-2010}"

mkdir -p results

echo "== paper tables & figures (${ROUNDS} rounds, seed ${SEED})"
python -m repro.experiments all --rounds "${ROUNDS}" --seed "${SEED}" \
    > "results/experiments_${ROUNDS}rounds.txt"

echo "== extension studies"
python -m repro.experiments extensions --seed "${SEED}" \
    > results/extensions.txt

echo "== full test suite"
python -m pytest tests/ 2>&1 | tee results/test_output.txt | tail -1

echo "== benchmarks"
python -m pytest benchmarks/ --benchmark-only 2>&1 \
    | tee results/bench_output.txt | tail -1

echo "done; see results/"
